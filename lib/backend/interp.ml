(** Reference interpreter for the FreeTensor IR.

    This is the semantic ground truth: every transformation (schedules,
    AD, auto-scheduling, lowering) must leave programs that this
    interpreter evaluates to the same outputs.  It is a plain tree walker;
    the faster closure-compiling executor ({!Compile_exec}) is
    cross-checked against it in the test suite.

    With [?profile] the walker additionally counts every executed
    operation, tensor access, loop trip and host-level kernel into a
    {!Ft_profile.Profile.t}; the closure executor emits the identical
    counts, which the differential tests verify. *)

open Ft_ir
open Ft_runtime
module Profile = Ft_profile.Profile

type value =
  | Vf of float
  | Vi of int
  | Vb of bool

exception Interp_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Interp_error s)) fmt

let as_f = function
  | Vf f -> f
  | Vi i -> float_of_int i
  | Vb _ -> err "boolean used as number"

let as_i = function
  | Vi i -> i
  | Vf f -> int_of_float f
  | Vb _ -> err "boolean used as integer"

let as_b = function
  | Vb b -> b
  | Vi i -> i <> 0
  | Vf _ -> err "float used as boolean"

(* {1 Dynamic race sanitizer}

   ThreadSanitizer-style shadow state for parallel-annotated loops: while
   executing (sequentially) inside an annotated loop, every tensor element
   remembers which iteration of that loop last stored, read, or reduced
   (per reduce op) it.  An access pair from two different iterations where
   at least one side is a non-commuting write is a race: the annotation
   promises the iterations can run concurrently, and concurrent execution
   of such a pair is unordered.  Commuting pairs — read/read and same-op
   reduce/reduce — are fine (the latter needs atomics, which the static
   verifier reports separately).  Being exact on the executed trace, this
   catches none of the analysis' over-approximation: a clean sanitizer run
   on a racy-verdict program is evidence the verdict is conservative. *)

type race = {
  race_tensor : string;
  race_offset : int;      (** flat element offset *)
  race_loop : int;        (** sid of the parallel-annotated [For] *)
  race_iter : string;     (** its iterator name *)
  race_kind : string;     (** e.g. ["store/store"] *)
  race_iter_a : int;      (** earlier-observed iteration *)
  race_iter_b : int;      (** current iteration *)
}

exception Race_detected of string

let race_to_string r =
  Printf.sprintf
    "race on %s[flat %d] across iterations %s=%d and %s=%d of parallel \
     loop #%d (%s)"
    r.race_tensor r.race_offset r.race_iter r.race_iter_a r.race_iter
    r.race_iter_b r.race_loop r.race_kind

type shadow_cell = {
  mutable sc_store : int option;  (* iteration of last Store *)
  mutable sc_read : int option;   (* iteration of last Load *)
  mutable sc_reduces : (Types.reduce_op * int) list;
      (* last iteration per reduce op — a list because mixed-op reduces
         to one element must be caught pairwise (at most 4 ops) *)
}

type san_region = {
  sr_sid : int;
  sr_iter_name : string;
  mutable sr_iter : int;
  sr_locals : (string, int) Hashtbl.t;
      (* tensors Var_def'd inside this region: fresh per iteration, so
         exempt.  Value is a nesting count (Var_def may shadow). *)
  sr_shadow : (string * int, shadow_cell) Hashtbl.t;
}

type san_state = {
  mutable regions : san_region list; (* innermost first *)
  mutable races : race list;         (* reverse order, capped *)
  mutable nraces : int;
}

let san_race_cap = 64

(* {1 Memory sanitizer (guarded execution)}

   Shadow state for [~guard:true]: per-local-tensor init bitmaps for
   uninitialized-read detection, plus the provenance needed to build a
   {!Diag.t} at the fault point — enclosing iterator names (innermost
   first) and the statement being executed.  Parameters are considered
   fully initialized by the caller; only [Var_def] locals get bitmaps. *)
type gstate = {
  gi_fn : string;
  gi_shadows : (string, Bytes.t) Hashtbl.t;
      (* '\000' = never stored; Hashtbl.add/remove mirrors Var_def scoping *)
  mutable gi_iters : string list; (* innermost first *)
  mutable gi_stmt : Stmt.t option;
}

type env = {
  scalars : (string, value) Hashtbl.t;
  tensors : (string, Tensor.t) Hashtbl.t;
  mtypes : (string, Types.mtype) Hashtbl.t; (* for DRAM classification *)
  prof : Profile.t option;
  mutable pcur : Profile.counters option; (* current statement's counters *)
  san : san_state option;
  guard : gstate option;
  sup : bool; (* a supervisor run context is installed *)
  mutable sup_host : bool;
      (* currently at host (kernel-boundary) level: the next non-Seq,
         non-Var_def statement is a kernel root *)
  mutable sup_poll : bool;
      (* the next For is a kernel root: poll the supervisor token once
         per iteration of that outermost loop *)
}

let make_env ?profile ?(sanitize = false) ?guard_fn () =
  let sup = Ft_machine.Machine.supervised () in
  { scalars = Hashtbl.create 16; tensors = Hashtbl.create 16;
    mtypes = Hashtbl.create 16; prof = profile; pcur = None;
    sup;
    (* under profiling, exec_host owns the kernel segmentation *)
    sup_host = sup && profile = None;
    sup_poll = false;
    san =
      (if sanitize then Some { regions = []; races = []; nraces = 0 }
       else None);
    guard =
      (match guard_fn with
       | Some fn ->
         Some
           { gi_fn = fn; gi_shadows = Hashtbl.create 16; gi_iters = [];
             gi_stmt = None }
       | None -> None) }

let guard_iters env g =
  List.rev_map
    (fun n ->
      ( n,
        match Hashtbl.find_opt env.scalars n with
        | Some v -> as_i v
        | None -> 0 ))
    g.gi_iters

let guard_sid g =
  match g.gi_stmt with
  | Some s -> Some s.Stmt.sid
  | None -> None

let guard_ctx g =
  match g.gi_stmt with
  | Some s -> Diag.context_of_stmt s
  | None -> ""

(* Checked flat offset: a Tensor fault becomes a structured diagnostic
   with full provenance. *)
let guard_offset env g ~access name t idx =
  match Tensor.flat_index t idx with
  | off -> off
  | exception Tensor.Fault f ->
    let dim =
      match f with
      | Tensor.Out_of_bounds { dim; _ } -> Some dim
      | _ -> None
    in
    raise
      (Diag.Diag_error
         (Diag.oob ~fn:g.gi_fn ?sid:(guard_sid g) ~context:(guard_ctx g)
            ~iters:(guard_iters env g) ~access ~tensor:name
            ~dtype:(Tensor.dtype t) ~shape:(Tensor.shape t) ~index:idx ~dim
            ()))

let guard_uninit env g ~name t ~off ~idx =
  match Hashtbl.find_opt g.gi_shadows name with
  | Some sh when Bytes.get sh off = '\000' ->
    raise
      (Diag.Diag_error
         (Diag.uninit ~fn:g.gi_fn ?sid:(guard_sid g) ~context:(guard_ctx g)
            ~iters:(guard_iters env g) ~tensor:name ~dtype:(Tensor.dtype t)
            ~shape:(Tensor.shape t) ~index:idx ()))
  | _ -> ()

(* NaN is the poison the guard hunts: it propagates silently and never
   compares equal.  +/-inf is a legitimate IEEE sentinel (softmax-style
   masking stores -inf and max-reduces over it), so it is not flagged. *)
let guard_finite env g ~access ~name ~idx v =
  if Float.is_nan v then
    raise
      (Diag.Diag_error
         (Diag.nonfinite ~fn:g.gi_fn ?sid:(guard_sid g)
            ~context:(guard_ctx g) ~iters:(guard_iters env g) ~access
            ~tensor:name ~index:idx ~value:v ()))

let guard_mark g name off =
  match Hashtbl.find_opt g.gi_shadows name with
  | Some sh -> Bytes.set sh off '\001'
  | None -> ()

let san_offset t idx =
  let strides = Tensor.strides t in
  let off = ref 0 in
  Array.iteri (fun d i -> off := !off + (i * strides.(d))) idx;
  !off

let san_report st (rg : san_region) name off kind prev =
  st.nraces <- st.nraces + 1;
  if st.nraces <= san_race_cap then
    st.races <-
      { race_tensor = name; race_offset = off; race_loop = rg.sr_sid;
        race_iter = rg.sr_iter_name; race_kind = kind; race_iter_a = prev;
        race_iter_b = rg.sr_iter }
      :: st.races

let san_cell (rg : san_region) name off =
  let key = (name, off) in
  match Hashtbl.find_opt rg.sr_shadow key with
  | Some c -> c
  | None ->
    let c = { sc_store = None; sc_read = None; sc_reduces = [] } in
    Hashtbl.replace rg.sr_shadow key c;
    c

(* One access inside the active parallel regions.  Each enclosing region
   is checked independently: a race w.r.t. any annotated loop is a race. *)
let san_access env name t idx (kind : [ `Read | `Store | `Reduce of Types.reduce_op ]) =
  match env.san with
  | None -> ()
  | Some st ->
    (match st.regions with
     | [] -> ()
     | regions ->
       let off = san_offset t idx in
       List.iter
         (fun rg ->
           if not (Hashtbl.mem rg.sr_locals name) then begin
             let c = san_cell rg name off in
             let i = rg.sr_iter in
             let cross = function
               | Some j when j <> i -> Some j
               | _ -> None
             in
             (match kind with
              | `Read ->
                (match cross c.sc_store with
                 | Some j -> san_report st rg name off "store/load" j
                 | None -> ());
                List.iter
                  (fun (_, j) ->
                    if j <> i then
                      san_report st rg name off "reduce/load" j)
                  c.sc_reduces;
                c.sc_read <- Some i
              | `Store ->
                (match cross c.sc_store with
                 | Some j -> san_report st rg name off "store/store" j
                 | None -> ());
                (match cross c.sc_read with
                 | Some j -> san_report st rg name off "load/store" j
                 | None -> ());
                List.iter
                  (fun (_, j) ->
                    if j <> i then
                      san_report st rg name off "reduce/store" j)
                  c.sc_reduces;
                c.sc_store <- Some i
              | `Reduce op ->
                (match cross c.sc_store with
                 | Some j -> san_report st rg name off "store/reduce" j
                 | None -> ());
                (match cross c.sc_read with
                 | Some j -> san_report st rg name off "load/reduce" j
                 | None -> ());
                List.iter
                  (fun (op', j) ->
                    if op' <> op && j <> i then
                      san_report st rg name off
                        (Printf.sprintf "reduce(%s)/reduce(%s)"
                           (Types.reduce_op_to_string op')
                           (Types.reduce_op_to_string op))
                        j)
                  c.sc_reduces;
                c.sc_reduces <-
                  (op, i) :: List.remove_assoc op c.sc_reduces)
           end)
         regions)

(* Var_def inside an active region: the tensor is re-created on every
   iteration, so cross-iteration matches on its name are false positives.
   Counted (not flagged) because a nested Var_def may shadow. *)
let san_def_enter env name =
  match env.san with
  | None -> ()
  | Some st ->
    List.iter
      (fun rg ->
        let n =
          match Hashtbl.find_opt rg.sr_locals name with
          | Some n -> n
          | None -> 0
        in
        Hashtbl.replace rg.sr_locals name (n + 1))
      st.regions

let san_def_exit env name =
  match env.san with
  | None -> ()
  | Some st ->
    List.iter
      (fun rg ->
        match Hashtbl.find_opt rg.sr_locals name with
        | Some 1 -> Hashtbl.remove rg.sr_locals name
        | Some n -> Hashtbl.replace rg.sr_locals name (n - 1)
        | None -> ())
      st.regions

let tensor env name =
  try Hashtbl.find env.tensors name
  with Not_found -> err "unbound tensor %s" name

let is_dram env name =
  match Hashtbl.find_opt env.mtypes name with
  | Some (Types.Cpu_heap | Types.Gpu_global) -> true
  | _ -> false

let record_access recorder env c name t =
  match env.prof with
  | Some p ->
    recorder p c ~dram:(is_dram env name)
      ~name
      ~elem:(Types.dtype_size (Tensor.dtype t))
      ~total:(Tensor.byte_size t)
  | None -> ()

let rec eval env (e : Expr.t) : value =
  (match env.pcur with
   | Some c -> Profile.bump_expr c e
   | None -> ());
  match e with
  | Expr.Int_const n -> Vi n
  | Expr.Float_const f -> Vf f
  | Expr.Bool_const b -> Vb b
  | Expr.Var x -> (
    match Hashtbl.find_opt env.scalars x with
    | Some v -> v
    | None -> (
      (* allow reading a 0-D tensor through its bare name *)
      match Hashtbl.find_opt env.tensors x with
      | Some t when Tensor.ndim t = 0 ->
        if Types.is_float (Tensor.dtype t) then Vf (Tensor.get_flat_f t 0)
        else Vi (Tensor.get_flat_i t 0)
      | _ -> err "unbound variable %s" x))
  | Expr.Load { l_var; l_indices } ->
    let t = tensor env l_var in
    let idx = Array.of_list (List.map (fun e -> as_i (eval env e)) l_indices) in
    (match env.pcur with
     | Some c -> record_access Profile.record_read env c l_var t
     | None -> ());
    if env.san <> None then san_access env l_var t idx `Read;
    (match env.guard with
     | None ->
       if Types.is_float (Tensor.dtype t) then Vf (Tensor.get_f t idx)
       else Vi (Tensor.get_i t idx)
     | Some g ->
       let off = guard_offset env g ~access:Diag.Acc_load l_var t idx in
       guard_uninit env g ~name:l_var t ~off ~idx;
       if Types.is_float (Tensor.dtype t) then Vf (Tensor.get_flat_f t off)
       else Vi (Tensor.get_flat_i t off))
  | Expr.Unop (op, a) -> eval_unop env op a
  | Expr.Binop (op, a, b) -> eval_binop env op a b
  | Expr.Select (c, a, b) -> if as_b (eval env c) then eval env a else eval env b
  | Expr.Cast (dt, a) ->
    let v = eval env a in
    if Types.is_float dt then Vf (as_f v) else Vi (as_i v)
  | Expr.Meta_ndim p -> err "Meta_ndim %s survived partial evaluation" p
  | Expr.Meta_shape (p, _) -> err "Meta_shape %s survived partial evaluation" p

and eval_unop env op a =
  let v = eval env a in
  match op, v with
  | Expr.Neg, Vi i -> Vi (-i)
  | Expr.Neg, Vf f -> Vf (-.f)
  | Expr.Not, v -> Vb (not (as_b v))
  | Expr.Abs, Vi i -> Vi (abs i)
  | Expr.Abs, Vf f -> Vf (Float.abs f)
  | Expr.Sqrt, v -> Vf (sqrt (as_f v))
  | Expr.Exp, v -> Vf (exp (as_f v))
  | Expr.Ln, v -> Vf (log (as_f v))
  | Expr.Sigmoid, v -> Vf (1.0 /. (1.0 +. exp (-.as_f v)))
  | Expr.Tanh, v -> Vf (tanh (as_f v))
  | Expr.Floor_op, v -> Vf (floor (as_f v))
  | Expr.Ceil_op, v -> Vf (ceil (as_f v))
  | Expr.Square, Vi i -> Vi (i * i)
  | Expr.Square, Vf f -> Vf (f *. f)
  | (Expr.Neg | Expr.Abs | Expr.Square), Vb _ -> err "bool arithmetic"

and eval_binop env op a b =
  let va = eval env a in
  (* short-circuit logicals *)
  match op with
  | Expr.L_and -> if as_b va then Vb (as_b (eval env b)) else Vb false
  | Expr.L_or -> if as_b va then Vb true else Vb (as_b (eval env b))
  | _ -> (
    let vb = eval env b in
    let arith fi ff =
      match va, vb with
      | Vi x, Vi y -> Vi (fi x y)
      | _ -> Vf (ff (as_f va) (as_f vb))
    in
    let compare_vals fi ff =
      match va, vb with
      | Vi x, Vi y -> Vb (fi x y)
      | _ -> Vb (ff (as_f va) (as_f vb))
    in
    match op with
    | Expr.Add -> arith ( + ) ( +. )
    | Expr.Sub -> arith ( - ) ( -. )
    | Expr.Mul -> arith ( * ) ( *. )
    | Expr.Div -> Vf (as_f va /. as_f vb)
    | Expr.Floor_div -> Vi (Expr.ifloor_div (as_i va) (as_i vb))
    | Expr.Mod -> Vi (Expr.imod (as_i va) (as_i vb))
    | Expr.Min -> arith min Float.min
    | Expr.Max -> arith max Float.max
    | Expr.Pow -> Vf (Float.pow (as_f va) (as_f vb))
    | Expr.Eq -> compare_vals ( = ) ( = )
    | Expr.Ne -> compare_vals ( <> ) ( <> )
    | Expr.Lt -> compare_vals ( < ) ( < )
    | Expr.Le -> compare_vals ( <= ) ( <= )
    | Expr.Gt -> compare_vals ( > ) ( > )
    | Expr.Ge -> compare_vals ( >= ) ( >= )
    | Expr.L_and | Expr.L_or -> assert false)

let apply_reduce op cur v =
  match op with
  | Types.R_add -> cur +. v
  | Types.R_mul -> cur *. v
  | Types.R_min -> Float.min cur v
  | Types.R_max -> Float.max cur v

(* Supervision wrapper: mirror the cost model's kernel segmentation
   (every host-level non-Var_def statement is one kernel) and fire
   [Machine.on_kernel] at each boundary; a kernel rooted at a For
   additionally polls the cancellation/deadline token once per
   iteration of that outermost loop.  [exec_node] below is the actual
   interpreter. *)
let rec exec env (s : Stmt.t) : unit =
  if not env.sup_host then exec_node env s
  else
    match s.node with
    | Stmt.Nop | Stmt.Seq _ | Stmt.Var_def _ -> exec_node env s
    | _ ->
      Ft_machine.Machine.on_kernel ();
      env.sup_host <- false;
      env.sup_poll <- (match s.node with Stmt.For _ -> true | _ -> false);
      Fun.protect
        ~finally:(fun () ->
          env.sup_host <- true;
          env.sup_poll <- false)
        (fun () -> exec_node env s)

and exec_node env (s : Stmt.t) : unit =
  (match env.guard with
   | Some g -> g.gi_stmt <- Some s
   | None -> ());
  (match env.prof with
   | Some p ->
     env.pcur <-
       (match s.node with
        (* Eval statements are elided by the compiled executor; neither
           executor counts them so observed counters stay comparable *)
        | Stmt.Eval _ -> None
        | _ -> Some (Profile.ctr p s.sid))
   | None -> ());
  match s.node with
  | Stmt.Nop -> ()
  | Stmt.Store { s_var; s_indices; s_value } ->
    let t = tensor env s_var in
    let idx = Array.of_list (List.map (fun e -> as_i (eval env e)) s_indices) in
    let v = eval env s_value in
    (match env.pcur with
     | Some c -> record_access Profile.record_write env c s_var t
     | None -> ());
    if env.san <> None then san_access env s_var t idx `Store;
    (match env.guard with
     | None ->
       if Types.is_float (Tensor.dtype t) then Tensor.set_f t idx (as_f v)
       else Tensor.set_i t idx (as_i v)
     | Some g ->
       (* Fault order matches the unguarded interpreter: indices and
          value are fully evaluated before any bounds fault fires. *)
       let off = guard_offset env g ~access:Diag.Acc_store s_var t idx in
       if Types.is_float (Tensor.dtype t) then begin
         let x = as_f v in
         (* a literal constant stored value (e.g. the -inf identity of a
            max-reduction) is intentional, not poison *)
         if not (Expr.is_constant s_value) then
           guard_finite env g ~access:Diag.Acc_store ~name:s_var ~idx x;
         guard_mark g s_var off;
         Tensor.set_flat_f t off x
       end
       else begin
         guard_mark g s_var off;
         Tensor.set_flat_i t off (as_i v)
       end)
  | Stmt.Reduce_to { r_var; r_indices; r_op; r_value; r_atomic } ->
    let t = tensor env r_var in
    let idx = Array.of_list (List.map (fun e -> as_i (eval env e)) r_indices) in
    let v = as_f (eval env r_value) in
    (match env.pcur with
     | Some c ->
       record_access Profile.record_read env c r_var t;
       Profile.bump_reduce ~atomic:r_atomic c r_op;
       record_access Profile.record_write env c r_var t
     | None -> ());
    if env.san <> None then san_access env r_var t idx (`Reduce r_op);
    (match env.guard with
     | None ->
       if Types.is_float (Tensor.dtype t) then
         Tensor.set_f t idx (apply_reduce r_op (Tensor.get_f t idx) v)
       else
         Tensor.set_i t idx
           (int_of_float
              (apply_reduce r_op (float_of_int (Tensor.get_i t idx)) v))
     | Some g ->
       let off = guard_offset env g ~access:Diag.Acc_reduce r_var t idx in
       if Types.is_float (Tensor.dtype t) && not (Expr.is_constant r_value)
       then guard_finite env g ~access:Diag.Acc_reduce ~name:r_var ~idx v;
       guard_uninit env g ~name:r_var t ~off ~idx;
       guard_mark g r_var off;
       if Types.is_float (Tensor.dtype t) then
         Tensor.set_flat_f t off (apply_reduce r_op (Tensor.get_flat_f t off) v)
       else
         Tensor.set_flat_i t off
           (int_of_float
              (apply_reduce r_op (float_of_int (Tensor.get_flat_i t off)) v)))
  | Stmt.Var_def d ->
    let dims =
      Array.of_list (List.map (fun e -> as_i (eval env e)) d.d_shape)
    in
    let t = Tensor.create d.d_dtype dims in
    let saved = Hashtbl.find_opt env.tensors d.d_name in
    let saved_mt = Hashtbl.find_opt env.mtypes d.d_name in
    Hashtbl.replace env.tensors d.d_name t;
    (match env.prof with
     | Some p ->
       Hashtbl.replace env.mtypes d.d_name d.d_mtype;
       Profile.alloc p (Tensor.byte_size t)
     | None -> ());
    (match env.guard with
     | Some g ->
       Hashtbl.add g.gi_shadows d.d_name
         (Bytes.make (max 1 (Tensor.numel t)) '\000')
     | None -> ());
    san_def_enter env d.d_name;
    exec env d.d_body;
    san_def_exit env d.d_name;
    (match env.guard with
     | Some g -> Hashtbl.remove g.gi_shadows d.d_name
     | None -> ());
    (match env.prof with
     | Some p ->
       Profile.release p (Tensor.byte_size t);
       (match saved_mt with
        | Some m -> Hashtbl.replace env.mtypes d.d_name m
        | None -> Hashtbl.remove env.mtypes d.d_name)
     | None -> ());
    (match saved with
     | Some old -> Hashtbl.replace env.tensors d.d_name old
     | None -> Hashtbl.remove env.tensors d.d_name);
    Tensor.arena_free t
  | Stmt.For f ->
    let poll = env.sup_poll in
    env.sup_poll <- false;
    let myc = env.pcur in
    let b = as_i (eval env f.f_begin) in
    let e = as_i (eval env f.f_end) in
    let st = as_i (eval env f.f_step) in
    if st <= 0 then err "non-positive loop step";
    (match myc with
     | Some c -> c.Profile.entries <- c.Profile.entries + 1
     | None -> ());
    let saved = Hashtbl.find_opt env.scalars f.f_iter in
    (match env.guard with
     | Some g -> g.gi_iters <- f.f_iter :: g.gi_iters
     | None -> ());
    let region =
      match env.san, f.f_property.Stmt.parallel with
      | Some st, Some _ ->
        let rg =
          { sr_sid = s.sid; sr_iter_name = f.f_iter; sr_iter = b;
            sr_locals = Hashtbl.create 8; sr_shadow = Hashtbl.create 64 }
        in
        st.regions <- rg :: st.regions;
        Some (st, rg)
      | _ -> None
    in
    let it = ref b in
    while !it < e do
      if poll then Ft_machine.Machine.poll ();
      (match myc with
       | Some c -> c.Profile.trips <- c.Profile.trips + 1
       | None -> ());
      (match region with
       | Some (_, rg) -> rg.sr_iter <- !it
       | None -> ());
      Hashtbl.replace env.scalars f.f_iter (Vi !it);
      exec env f.f_body;
      it := !it + st
    done;
    (match region with
     | Some (st, _) -> st.regions <- List.tl st.regions
     | None -> ());
    (match env.guard with
     | Some g -> g.gi_iters <- List.tl g.gi_iters
     | None -> ());
    (match saved with
     | Some v -> Hashtbl.replace env.scalars f.f_iter v
     | None -> Hashtbl.remove env.scalars f.f_iter)
  | Stmt.If i ->
    if as_b (eval env i.i_cond) then exec env i.i_then
    else (match i.i_else with Some e -> exec env e | None -> ())
  | Stmt.Assert_stmt (c, b) ->
    if not (as_b (eval env c)) then
      err "assertion failed: %s" (Expr.to_string c);
    exec env b
  | Stmt.Seq ss -> List.iter (exec env) ss
  | Stmt.Eval e -> ignore (eval env e)
  | Stmt.Lib_call { body; _ } -> exec env body
  | Stmt.Microkernel { body; _ } -> exec env body
  | Stmt.Call { callee; _ } ->
    err "call to %s survived inlining; run partial evaluation first" callee

(* Host-level walk used only when profiling: mirrors the cost model's
   kernel segmentation (every top-level non-Var_def statement outside a
   loop is one kernel). *)
let rec exec_host p env (s : Stmt.t) : unit =
  match s.Stmt.node with
  | Stmt.Nop -> ()
  | Stmt.Seq ss -> List.iter (exec_host p env) ss
  | Stmt.Var_def d ->
    env.pcur <- Some (Profile.ctr p s.Stmt.sid);
    let dims =
      Array.of_list (List.map (fun e -> as_i (eval env e)) d.d_shape)
    in
    let t = Tensor.create d.d_dtype dims in
    let saved = Hashtbl.find_opt env.tensors d.d_name in
    let saved_mt = Hashtbl.find_opt env.mtypes d.d_name in
    Hashtbl.replace env.tensors d.d_name t;
    Hashtbl.replace env.mtypes d.d_name d.d_mtype;
    Profile.alloc p (Tensor.byte_size t);
    exec_host p env d.d_body;
    Profile.release p (Tensor.byte_size t);
    (match saved_mt with
     | Some m -> Hashtbl.replace env.mtypes d.d_name m
     | None -> Hashtbl.remove env.mtypes d.d_name);
    (match saved with
     | Some old -> Hashtbl.replace env.tensors d.d_name old
     | None -> Hashtbl.remove env.tensors d.d_name);
    Tensor.arena_free t
  | _ ->
    if env.sup then begin
      Ft_machine.Machine.on_kernel ();
      env.sup_poll <- (match s.Stmt.node with Stmt.For _ -> true | _ -> false)
    end;
    Profile.enter_kernel p s;
    exec env s;
    Profile.exit_kernel p

(* Declared static shape of a parameter, when every dimension folds at
   compile time.  Uses the shared {!Expr.static_int} so the interpreter
   and the compiled executor agree on what is checkable. *)
let static_param_shape (p : Stmt.param) =
  match p.Stmt.p_shape with
  | Stmt.Any_dim -> None
  | Stmt.Fixed dims ->
    let rec go acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | e :: rest -> (
        match Expr.static_int e with
        | Some n -> go (n :: acc) rest
        | None -> None)
    in
    go [] dims

let entry_err d = raise (Interp_error (Diag.to_string d))

let run_func_env ?(sizes = []) ?profile ?sanitize ?(guard = false)
    (fn : Stmt.func) (args : (string * Tensor.t) list) : env =
  let env =
    make_env ?profile ?sanitize
      ?guard_fn:(if guard then Some fn.fn_name else None)
      ()
  in
  List.iter (fun (n, v) -> Hashtbl.replace env.scalars n (Vi v)) sizes;
  if guard then
    List.iter
      (fun (n, _) ->
        if
          not
            (List.exists
               (fun (p : Stmt.param) -> p.Stmt.p_name = n)
               fn.fn_params)
        then entry_err (Diag.unknown_arg ~fn:fn.fn_name n))
      args;
  List.iter
    (fun (p : Stmt.param) ->
      match List.assoc_opt p.p_name args with
      | Some t ->
        (if guard then
           match static_param_shape p with
           | Some declared when declared <> Tensor.shape t ->
             entry_err
               (Diag.arg_shape ~fn:fn.fn_name p.p_name ~declared
                  ~got:(Tensor.shape t))
           | _ -> ());
        Hashtbl.replace env.tensors p.p_name t
      | None -> entry_err (Diag.missing_arg ~fn:fn.fn_name p.p_name))
    fn.fn_params;
  (match profile with
   | None -> exec env fn.fn_body
   | Some p ->
     List.iter
       (fun (pa : Stmt.param) ->
         Hashtbl.replace env.mtypes pa.p_name pa.p_mtype)
       fn.fn_params;
     let base =
       List.fold_left
         (fun acc (pa : Stmt.param) ->
           match List.assoc_opt pa.p_name args with
           | Some t -> acc + Tensor.byte_size t
           | None -> acc)
         0 fn.fn_params
     in
     Profile.alloc p base;
     exec_host p env fn.fn_body;
     Profile.release p base);
  env

(** Run a function: [sizes] binds free size parameters appearing in shapes
    and bounds; [args] binds every tensor parameter by name.  Parameters
    with [Output]/[Inout] access are mutated in place.  With [?profile]
    every executed operation and host-level kernel is counted.  With
    [~sanitize:true] the dynamic race sanitizer shadow-tracks accesses
    inside parallel-annotated loops and raises {!Race_detected} after the
    run if any cross-iteration racing pair was observed. *)
let run_func ?(sizes = []) ?profile ?(sanitize = false) ?(guard = false)
    (fn : Stmt.func) (args : (string * Tensor.t) list) : unit =
  let env = run_func_env ~sizes ?profile ~sanitize ~guard fn args in
  match env.san with
  | Some st when st.nraces > 0 ->
    let shown = List.rev st.races in
    let suffix =
      if st.nraces > san_race_cap then
        Printf.sprintf "\n... and %d more" (st.nraces - san_race_cap)
      else ""
    in
    raise
      (Race_detected
         (Printf.sprintf "%d race(s) in %s:\n%s%s" st.nraces fn.fn_name
            (String.concat "\n" (List.map race_to_string shown))
            suffix))
  | _ -> ()

(** Like [run_func ~sanitize:true] but returns the observed races
    (earliest first, capped) instead of raising. *)
let sanitize_func ?(sizes = []) (fn : Stmt.func)
    (args : (string * Tensor.t) list) : race list =
  let env = run_func_env ~sizes ~sanitize:true fn args in
  match env.san with
  | Some st -> List.rev st.races
  | None -> []

(** Run a bare statement with given bindings (tests).  Under [?profile]
    bound tensors are treated as DRAM-resident, like parameters. *)
let run_stmt ?(sizes = []) ?profile (s : Stmt.t)
    (tensors : (string * Tensor.t) list) : unit =
  let env = make_env ?profile () in
  List.iter (fun (n, v) -> Hashtbl.replace env.scalars n (Vi v)) sizes;
  List.iter (fun (n, t) -> Hashtbl.replace env.tensors n t) tensors;
  match profile with
  | None -> exec env s
  | Some p ->
    List.iter
      (fun (n, _) -> Hashtbl.replace env.mtypes n Types.Cpu_heap)
      tensors;
    let base =
      List.fold_left (fun acc (_, t) -> acc + Tensor.byte_size t) 0 tensors
    in
    Profile.alloc p base;
    exec_host p env s;
    Profile.release p base

(** Evaluate a closed integer expression under size bindings — used to
    materialize symbolic shapes (e.g. tape extents) into concrete dims. *)
let eval_static ?(sizes = []) (e : Expr.t) : int =
  let env = make_env () in
  List.iter (fun (n, v) -> Hashtbl.replace env.scalars n (Vi v)) sizes;
  as_i (eval env e)

(** Concrete dims of a parameter under size bindings. *)
let param_dims ?(sizes = []) (p : Stmt.param) : int array =
  match p.Stmt.p_shape with
  | Stmt.Fixed es -> Array.of_list (List.map (eval_static ~sizes) es)
  | Stmt.Any_dim -> err "param %s has no fixed shape" p.Stmt.p_name
