(** Persistent domain pool for the parallel compiled executor.

    Chunked static scheduling: {!run_chunks}[ n f] runs [f 0] inline on
    the calling (master) domain and [f 1 .. f (n-1)] on lazily-spawned
    pool workers, then joins them all before returning.  Exceptions from
    any chunk are re-raised on the master after every chunk has joined.

    The pool size defaults to {!Ft_machine.Machine.host_cores} and is
    overridable via the [FT_NUM_DOMAINS] environment variable (read at
    startup) or {!set_num_domains}; both clamp to [1..max_domains]. *)

(** Hard upper bound on pool size (and on per-worker body instances the
    compiler materializes per parallel loop). *)
val max_domains : int

(** Current configured pool size (>= 1; 1 means fully sequential). *)
val num_domains : unit -> int

(** Override the pool size, clamped to [1..max_domains].  Affects how
    many chunks subsequent parallel regions use; already-spawned workers
    stay parked. *)
val set_num_domains : int -> unit

(** [run_chunks n f] executes [f 0 .. f (n-1)] concurrently (chunk 0 on
    the caller) and returns once all have finished.  [n] is clamped to
    [max_domains]; [n <= 0] is a no-op.  Mutex hand-offs order memory:
    writes made before the call are visible to every chunk, and chunk
    writes are visible to the caller after the join.

    Worker chunks inherit the caller's supervision context
    ({!Ft_machine.Machine.Ctx}) and memory budget
    ({!Ft_runtime.Tensor.current_budget}) for their duration, so entry
    polls tick the caller's deadline clock and chunk-local allocations
    charge the caller's budget.

    Reentrancy: a [run_chunks] issued from inside pool work (a chunk or
    a {!run_tasks} task) runs its chunks inline sequentially on the
    calling domain — bitwise-identical by the deterministic-reduction
    property, and free of worker-slot contention with other in-flight
    regions.

    Cancellation: the first chunk that raises (including a supervisor
    deadline observed at its entry poll) poisons the region, so chunks
    not yet started are skipped; the original exception is re-raised
    after every chunk has joined, and the pool stays reusable. *)
val run_chunks : int -> (int -> unit) -> unit

(** [run_tasks tasks] runs every task to completion across the pool
    (master domain included), each task claimed from a shared counter —
    the serving layer's dispatch primitive for independent requests.
    Slot [i] of the result is the exception task [i] raised, if any:
    one task failing never prevents the others from running, and the
    pool stays reusable.  Tasks run with pool-work status set, so
    parallel regions inside a task execute inline on its domain.

    Tasks do NOT inherit the caller's supervision context or budget —
    each task is its own fault domain and installs what it needs.

    [max_workers] caps the domains used (default: the pool size);
    [~max_workers:1] runs every task on the caller, in order, in the
    same per-task environment — the isolation verifier's sequential
    baseline, with everything but dispatch concurrency held fixed. *)
val run_tasks : ?max_workers:int -> (unit -> unit) array -> exn option array

(** True while the current parallel region (the one whose chunk or task
    this domain is executing) is poisoned by a failed chunk.  Compiled
    parallel loop bodies check this between iterations to stop early;
    always false outside a region. *)
val aborted : unit -> bool

(** Stop and join all spawned workers (installed as an [at_exit] hook;
    safe to call repeatedly — the pool restarts lazily on next use). *)
val shutdown : unit -> unit
