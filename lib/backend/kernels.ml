(** Hand-written flat microkernels for blockized loop nests.

    Each kernel is the tensorized form of a scalar nest recognized by
    {!Ft_lower.Blockize}; operands arrive as raw float buffers
    ({!Ft_runtime.Tensor.float_data}) plus a flat base offset and one
    constant element stride per kernel loop.

    Bitwise contract: the runtime stores every float dtype as a full
    IEEE double, so preserving the scalar nest's {e per-output-element}
    operation sequence (same multiplies and adds, in the same order, on
    the same values) makes each kernel's result bitwise equal to the
    loop nest it replaced — which is exactly what the differential
    oracle demands.  Register accumulators are sound because every
    recognized destination is distinct from the source tensors, so no
    load in the nest can observe a deferred store.

    Loops deliberately use [Array.unsafe_get]/[unsafe_set]: like the
    rest of the unguarded compiled path, in-bounds access is the
    program's obligation (the guarded path never runs these kernels). *)

let ( .!() ) a k = Array.unsafe_get a k
let ( .!()<- ) a k v = Array.unsafe_set a k v

(** Register-tiled i-j-k matmul generalized to arbitrary constant
    strides: for each [(i, j)], [C] starts from [init] (or its current
    value) and accumulates [A .* B] over [k] ascending — the scalar
    nest's exact per-element order.  The [j] dimension is processed in
    tiles of 4 register accumulators ([jt] below); [C]'s [j]-stride must
    be nonzero so tile elements are distinct cells (the recognizer
    guarantees it). *)
let matmul ~m ~n ~kdim ~(init : float option) ~(c : float array) ~cb ~csi
    ~csj ~(a : float array) ~ab ~asi ~asj ~ask ~(b : float array) ~bb ~bsi
    ~bsj ~bsk =
  for i = 0 to m - 1 do
    let ci = cb + (i * csi) in
    let ai = ab + (i * asi) in
    let bi = bb + (i * bsi) in
    let j = ref 0 in
    while !j + 4 <= n do
      let j0 = !j in
      let c0 = ci + (j0 * csj) in
      let a0 = ai + (j0 * asj) and b0 = bi + (j0 * bsj) in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      (match init with
       | Some v ->
         s0 := v;
         s1 := v;
         s2 := v;
         s3 := v
       | None ->
         s0 := c.!(c0);
         s1 := c.!(c0 + csj);
         s2 := c.!(c0 + (2 * csj));
         s3 := c.!(c0 + (3 * csj)));
      for k = 0 to kdim - 1 do
        let ak = a0 + (k * ask) and bk = b0 + (k * bsk) in
        s0 := !s0 +. (a.!(ak) *. b.!(bk));
        s1 := !s1 +. (a.!(ak + asj) *. b.!(bk + bsj));
        s2 := !s2 +. (a.!(ak + (2 * asj)) *. b.!(bk + (2 * bsj)));
        s3 := !s3 +. (a.!(ak + (3 * asj)) *. b.!(bk + (3 * bsj)))
      done;
      c.!(c0) <- !s0;
      c.!(c0 + csj) <- !s1;
      c.!(c0 + (2 * csj)) <- !s2;
      c.!(c0 + (3 * csj)) <- !s3;
      j := j0 + 4
    done;
    (* tail columns, one register accumulator each *)
    for j = !j to n - 1 do
      let co = ci + (j * csj) in
      let a0 = ai + (j * asj) and b0 = bi + (j * bsj) in
      let s = ref (match init with Some v -> v | None -> c.!(co)) in
      for k = 0 to kdim - 1 do
        s := !s +. (a.!(a0 + (k * ask)) *. b.!(b0 + (k * bsk)))
      done;
      c.!(co) <- !s
    done
  done

(** Dot product into an invariant cell: [d += Σ_k a[k]·b[k]], register
    accumulator seeded from the destination's current value. *)
let dot ~kdim ~(d : float array) ~db ~(a : float array) ~ab ~as_
    ~(b : float array) ~bb ~bs =
  let s = ref d.!(db) in
  for k = 0 to kdim - 1 do
    s := !s +. (a.!(ab + (k * as_)) *. b.!(bb + (k * bs)))
  done;
  d.!(db) <- !s

(** Fused multiply-accumulate over strided arrays:
    [d[k] += a[k]·b[k]] — per-trip read-modify-write, exactly the
    scalar order (the destination varies with [k], so no register
    accumulator applies). *)
let axpy ~kdim ~(d : float array) ~db ~ds ~(a : float array) ~ab ~as_
    ~(b : float array) ~bb ~bs =
  for k = 0 to kdim - 1 do
    let o = db + (k * ds) in
    d.!(o) <- d.!(o) +. (a.!(ab + (k * as_)) *. b.!(bb + (k * bs)))
  done

(** Strided sum reduction into an invariant cell. *)
let reduce ~kdim ~(d : float array) ~db ~(a : float array) ~ab ~as_ =
  let s = ref d.!(db) in
  for k = 0 to kdim - 1 do
    s := !s +. a.!(ab + (k * as_))
  done;
  d.!(db) <- !s
