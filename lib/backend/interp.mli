(** Reference interpreter for the FreeTensor IR — the semantic ground
    truth.  Every transformation (schedules, AD, auto-scheduling,
    lowering) must leave programs that this interpreter evaluates to the
    same outputs; the faster {!Compile_exec} is cross-checked against it
    in the test suite.  Parallel annotations are ignored (sequential
    execution of a correctly-scheduled program is semantics-preserving). *)

open Ft_ir
open Ft_runtime

exception Interp_error of string

(** {1 Dynamic race sanitizer}

    ThreadSanitizer-style shadow tracking for parallel-annotated loops:
    while (sequentially) executing inside an annotated loop, every tensor
    element remembers which iteration last stored, read, or reduced
    (per reduce op) it; any cross-iteration pair with a non-commuting
    write is a race.  Read/read and same-op reduce/reduce pairs commute
    and are not flagged.  Exact on the executed trace — a complement to
    the conservative static verifier {!Ft_analyze.Race}. *)

type race = {
  race_tensor : string;
  race_offset : int;      (** flat element offset *)
  race_loop : int;        (** sid of the parallel-annotated [For] *)
  race_iter : string;     (** its iterator name *)
  race_kind : string;     (** e.g. ["store/store"], ["reduce(+)/reduce(max)"] *)
  race_iter_a : int;      (** earlier-observed iteration *)
  race_iter_b : int;      (** current iteration *)
}

exception Race_detected of string

val race_to_string : race -> string

(** Run a function.  [sizes] binds free size parameters appearing in
    shapes and bounds; [args] binds every tensor parameter by name.
    [Output]/[Inout] parameters are mutated in place.

    [profile] turns on observed-counter collection: every executed
    operation, tensor access, loop trip and host-level kernel is counted
    into the given {!Ft_profile.Profile.t} (see its documentation for the
    counting conventions, shared with {!Compile_exec}).

    [sanitize:true] turns on the dynamic race sanitizer; if any race is
    observed, {!Race_detected} is raised after the run completes (outputs
    are still the sequential-semantics values).

    [guard:true] turns on the memory sanitizer: every access is
    bounds-checked, loads from [Var_def] locals are checked against a
    per-tensor init bitmap, and float stores/reduce operands are checked
    for NaN poison (+/-inf is a legitimate IEEE sentinel — softmax-style
    masking stores -inf — and literal constant initializers are exempt
    entirely).  The first fault raises {!Ft_ir.Diag.Diag_error}
    with the statement id, the enclosing iteration vector and the
    concrete index.  Argument binding is also strict under guard
    (unknown arguments and statically-checkable shape mismatches raise
    [Interp_error] with the canonical {!Ft_ir.Diag} message, identical
    to the compiled executor's). *)
val run_func :
  ?sizes:(string * int) list ->
  ?profile:Ft_profile.Profile.t ->
  ?sanitize:bool ->
  ?guard:bool ->
  Stmt.func ->
  (string * Tensor.t) list ->
  unit

(** Like [run_func ~sanitize:true] but returns the observed races
    (earliest first, capped at an internal limit) instead of raising. *)
val sanitize_func :
  ?sizes:(string * int) list ->
  Stmt.func ->
  (string * Tensor.t) list ->
  race list

(** Run a bare statement with the given bindings (for tests).  Under
    [?profile], bound tensors are treated as DRAM-resident. *)
val run_stmt :
  ?sizes:(string * int) list ->
  ?profile:Ft_profile.Profile.t ->
  Stmt.t ->
  (string * Tensor.t) list ->
  unit

(** Evaluate a closed integer expression under size bindings — used to
    materialize symbolic shapes (e.g. tape extents) into concrete dims. *)
val eval_static : ?sizes:(string * int) list -> Expr.t -> int

(** Concrete dims of a parameter under size bindings. *)
val param_dims : ?sizes:(string * int) list -> Stmt.param -> int array
