(** Analytic cost model: charges a FreeTensor program to the abstract
    machine ({!Ft_machine.Machine}).

    The program is decomposed into *kernels* — the top-level statements
    outside any loop (after auto-scheduling a fused FreeTensor program is
    typically a single kernel; an operator chain is many).  For each
    kernel the walker counts, symbolically scaled by loop trip counts:
    - FLOPs: arithmetic in stored/reduced values,
    - main-memory traffic: loads/stores to tensors whose mtype is DRAM
      ([Cpu_heap]/[Gpu_global]); on-chip tensors (stack, shared, local)
      are free at this level,
    - the footprint: total bytes of distinct DRAM tensors touched,
    - the bound parallelism (product of parallel-annotated extents) and
      whether an inner loop is vectorized.

    Kernel time then follows the roofline model of {!Ft_machine.Machine};
    DRAM traffic is the footprint when the working set fits in L2
    (compulsory misses only), degrading toward the raw access volume as
    it exceeds cache (exactly the effect Fig. 17 measures). *)

open Ft_ir
open Ft_machine

exception Unknown_extent

type tensor_entry = {
  te_dtype : Types.dtype;
  te_mtype : Types.mtype;
  te_shape : Expr.t list;
}

type ctx = {
  sp : Machine.spec;
  fn_name : string;                  (* for resource-limit diagnostics *)
  sizes : (string, float) Hashtbl.t; (* size params + iterator midpoints *)
  tensors : (string, tensor_entry) Hashtbl.t;
  unknown_extent : float;            (* fallback for data-dependent trips *)
}

let rec feval ctx (e : Expr.t) : float =
  match e with
  | Expr.Int_const n -> float_of_int n
  | Expr.Float_const f -> f
  | Expr.Bool_const b -> if b then 1.0 else 0.0
  | Expr.Var x -> (
    match Hashtbl.find_opt ctx.sizes x with
    | Some v -> v
    | None -> raise Unknown_extent)
  | Expr.Load _ -> raise Unknown_extent
  | Expr.Unop (Expr.Neg, a) -> -.feval ctx a
  | Expr.Unop (Expr.Abs, a) -> Float.abs (feval ctx a)
  | Expr.Unop (_, a) -> feval ctx a
  | Expr.Binop (op, a, b) -> (
    let x = feval ctx a and y = feval ctx b in
    match op with
    | Expr.Add -> x +. y
    | Expr.Sub -> x -. y
    | Expr.Mul -> x *. y
    | Expr.Div -> x /. y
    | Expr.Floor_div -> Float.of_int (Expr.ifloor_div (int_of_float x) (max 1 (int_of_float y)))
    | Expr.Mod -> Float.of_int (Expr.imod (int_of_float x) (max 1 (int_of_float y)))
    | Expr.Min -> Float.min x y
    | Expr.Max -> Float.max x y
    | Expr.Pow -> Float.pow x y
    | _ -> raise Unknown_extent)
  | Expr.Select (_, a, b) -> 0.5 *. (feval ctx a +. feval ctx b)
  | Expr.Cast (_, a) -> feval ctx a
  | Expr.Meta_ndim _ | Expr.Meta_shape _ -> raise Unknown_extent

let extent ctx e = try Float.max 0.0 (feval ctx e) with Unknown_extent -> ctx.unknown_extent

let tensor_bytes ctx name =
  match Hashtbl.find_opt ctx.tensors name with
  | None -> 0.0
  | Some te ->
    List.fold_left (fun acc e -> acc *. extent ctx e) 1.0 te.te_shape
    *. float_of_int (Types.dtype_size te.te_dtype)

let is_dram_tensor ctx name =
  match Hashtbl.find_opt ctx.tensors name with
  | Some { te_mtype = Types.Cpu_heap | Types.Gpu_global; _ } -> true
  | Some { te_mtype = Types.Cpu_stack; _ } ->
    (* a GPU has no CPU stack: scratch the auto_mem_type pass did not
       move to registers/shared ends up in global memory *)
    ctx.sp.Machine.sp_device = Types.Gpu
  | Some _ -> false
  | None -> false

let elem_bytes ctx name =
  match Hashtbl.find_opt ctx.tensors name with
  | Some te -> float_of_int (Types.dtype_size te.te_dtype)
  | None -> 4.0

(* per-kernel accumulation *)
type kacc = {
  mutable flops : float;
  mutable atomics : float;    (* atomic RMW updates (Reduce_to r_atomic) *)
  mutable mem_bytes : float;  (* dynamic DRAM-tensor access volume *)
  mutable parallel : float;   (* product of parallel extents *)
  mutable vectorized : bool;
  mutable footprint : (string, unit) Hashtbl.t Lazy.t;
  mutable is_lib : bool;
  mutable is_mk : bool;       (* contains a blockized Microkernel nest *)
  mutable threads : float;     (* product of Cuda_thread_* extents *)
  mutable shared_live : float; (* Gpu_shared bytes live at this point *)
  mutable shared_peak : float; (* peak of shared_live over the kernel *)
}

let count_expr_ops e =
  Expr.fold
    (fun n sub ->
      match sub with
      | Expr.Binop ((Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min
                    | Expr.Max | Expr.Pow), _, _) -> n + 1
      | Expr.Unop ((Expr.Abs | Expr.Sqrt | Expr.Exp | Expr.Ln | Expr.Sigmoid
                   | Expr.Tanh | Expr.Square | Expr.Neg | Expr.Floor_op
                   | Expr.Ceil_op), _) -> n + 1
      | Expr.Select _ -> n + 1
      | _ -> n)
    0 e

(* DRAM access volume (bytes) of an expression, executed [mult] times
   under [loop_stack] (innermost first, with trip counts).  A load that is
   invariant to the innermost enclosing loops is hoisted into a register
   by any real backend compiler, so it only pays for the iterations of the
   outermost loop whose iterator it actually uses. *)
let expr_mem ctx loop_stack mult e =
  Expr.fold
    (fun acc sub ->
      match sub with
      | Expr.Load { l_var; _ } when is_dram_tensor ctx l_var ->
        let fv = Expr.free_vars sub in
        let rec hoisted m = function
          | (it, n) :: rest when not (List.mem it fv) ->
            hoisted (m /. Float.max 1.0 n) rest
          | _ -> m
        in
        acc +. (hoisted mult loop_stack *. elem_bytes ctx l_var)
      | _ -> acc)
    0.0 e

let expr_touches ctx (fp : (string, unit) Hashtbl.t) e =
  Expr.iter
    (function
      | Expr.Load { l_var; _ } when is_dram_tensor ctx l_var ->
        Hashtbl.replace fp l_var ()
      | _ -> ())
    e

(* Accumulate one kernel's body. [mult] is the dynamic execution count;
   [stack] holds the enclosing in-kernel loops (innermost first) for the
   register-hoisting model of [expr_mem]. *)
let rec acc_stmt ctx (k : kacc) fp stack mult (s : Stmt.t) =
  match s.Stmt.node with
  | Stmt.Nop | Stmt.Call _ -> ()
  | Stmt.Eval e ->
    k.flops <- k.flops +. (mult *. float_of_int (count_expr_ops e));
    k.mem_bytes <- k.mem_bytes +. expr_mem ctx stack mult e;
    expr_touches ctx fp e
  | Stmt.Store { s_var; s_indices; s_value } ->
    (* address arithmetic counts: the executors evaluate the index
       expressions on every store, and the profiler observes them *)
    let ops =
      count_expr_ops s_value
      + List.fold_left (fun n e -> n + count_expr_ops e) 0 s_indices
    in
    k.flops <- k.flops +. (mult *. float_of_int ops);
    let mem =
      expr_mem ctx stack mult s_value
      +. List.fold_left (fun a e -> a +. expr_mem ctx stack mult e) 0.0
           s_indices
      +.
      if is_dram_tensor ctx s_var then mult *. elem_bytes ctx s_var else 0.0
    in
    k.mem_bytes <- k.mem_bytes +. mem;
    expr_touches ctx fp s_value;
    List.iter (expr_touches ctx fp) s_indices;
    if is_dram_tensor ctx s_var then Hashtbl.replace fp s_var ()
  | Stmt.Reduce_to { r_var; r_indices; r_value; r_atomic; _ } ->
    let ops =
      count_expr_ops r_value + 1
      + List.fold_left (fun n e -> n + count_expr_ops e) 0 r_indices
    in
    k.flops <- k.flops +. (mult *. float_of_int ops);
    if r_atomic then k.atomics <- k.atomics +. mult;
    let target_mem =
      (* the accumulator itself is register-promoted across inner loops
         its indices do not depend on *)
      if is_dram_tensor ctx r_var then
        2.0
        *. expr_mem ctx stack mult
             (Expr.Load { Expr.l_var = r_var; l_indices = r_indices })
        /. elem_bytes ctx r_var *. elem_bytes ctx r_var
      else 0.0
    in
    let mem =
      expr_mem ctx stack mult r_value
      +. List.fold_left (fun a e -> a +. expr_mem ctx stack mult e) 0.0
           r_indices
      +. target_mem
    in
    k.mem_bytes <- k.mem_bytes +. mem;
    expr_touches ctx fp r_value;
    List.iter (expr_touches ctx fp) r_indices;
    if is_dram_tensor ctx r_var then Hashtbl.replace fp r_var ()
  | Stmt.Var_def d ->
    Hashtbl.replace ctx.tensors d.Stmt.d_name
      { te_dtype = d.Stmt.d_dtype; te_mtype = d.Stmt.d_mtype;
        te_shape = d.Stmt.d_shape };
    let shared_sz =
      match d.Stmt.d_mtype with
      | Types.Gpu_shared -> tensor_bytes ctx d.Stmt.d_name
      | _ -> 0.0
    in
    k.shared_live <- k.shared_live +. shared_sz;
    k.shared_peak <- Float.max k.shared_peak k.shared_live;
    acc_stmt ctx k fp stack mult d.Stmt.d_body;
    k.shared_live <- k.shared_live -. shared_sz;
    Hashtbl.remove ctx.tensors d.Stmt.d_name
  | Stmt.For f ->
    let lo = try feval ctx f.Stmt.f_begin with Unknown_extent -> 0.0 in
    let n =
      try
        Float.max 0.0
          ((feval ctx f.Stmt.f_end -. lo) /. Float.max 1.0 (extent ctx f.Stmt.f_step))
      with Unknown_extent -> ctx.unknown_extent
    in
    if f.Stmt.f_property.parallel <> None then
      k.parallel <- k.parallel *. Float.max 1.0 n;
    (match f.Stmt.f_property.parallel with
     | Some p when Types.is_cuda_thread_scope p ->
       k.threads <- k.threads *. Float.max 1.0 n
     | _ -> ());
    if f.Stmt.f_property.vectorize then k.vectorized <- true;
    let saved = Hashtbl.find_opt ctx.sizes f.Stmt.f_iter in
    Hashtbl.replace ctx.sizes f.Stmt.f_iter (lo +. ((n -. 1.0) /. 2.0));
    acc_stmt ctx k fp ((f.Stmt.f_iter, n) :: stack) (mult *. n) f.Stmt.f_body;
    (match saved with
     | Some v -> Hashtbl.replace ctx.sizes f.Stmt.f_iter v
     | None -> Hashtbl.remove ctx.sizes f.Stmt.f_iter)
  | Stmt.If i ->
    (* the condition is evaluated on every visit regardless of outcome *)
    k.flops <- k.flops +. (mult *. float_of_int (count_expr_ops i.Stmt.i_cond));
    k.mem_bytes <- k.mem_bytes +. expr_mem ctx stack mult i.Stmt.i_cond;
    expr_touches ctx fp i.Stmt.i_cond;
    (* branch probability approximated as 1 for the hot path *)
    acc_stmt ctx k fp stack mult i.Stmt.i_then;
    Option.iter (acc_stmt ctx k fp stack (mult *. 0.25)) i.Stmt.i_else
  | Stmt.Assert_stmt (_, b) -> acc_stmt ctx k fp stack mult b
  | Stmt.Seq ss -> List.iter (acc_stmt ctx k fp stack mult) ss
  | Stmt.Lib_call { body; _ } ->
    k.is_lib <- true;
    acc_stmt ctx k fp stack mult body
  | Stmt.Microkernel { body; _ } ->
    k.is_mk <- true;
    acc_stmt ctx k fp stack mult body

(* Charge one kernel rooted at [s]. *)
let charge_kernel ctx (m : Machine.metrics) ~live (s : Stmt.t) =
  let fp = Hashtbl.create 8 in
  let k =
    { flops = 0.; atomics = 0.; mem_bytes = 0.; parallel = 1.0;
      vectorized = false; footprint = lazy fp; is_lib = false;
      is_mk = false; threads = 1.0; shared_live = 0.0; shared_peak = 0.0 }
  in
  acc_stmt ctx k fp [] 1.0 s;
  (* a kernel oversubscribing the device's per-block limits could not
     launch on the real hardware, so refuse to price it *)
  if ctx.sp.Machine.sp_device = Types.Gpu && not k.is_lib then
    Machine.validate_kernel ctx.sp ~sid:s.Stmt.sid ~fn:ctx.fn_name
      ~threads_per_block:(int_of_float (Float.min 1e9 k.threads))
      ~shared_bytes:k.shared_peak ();
  let footprint =
    Hashtbl.fold (fun name () acc -> acc +. tensor_bytes ctx name) fp 0.0
  in
  let parallel_iters, vectorized, l2 =
    if k.is_lib then
      (* vendor library: perfectly parallel and cache-blocked *)
      (ctx.sp.Machine.parallelism, true, footprint)
    else (int_of_float (Float.min 1e9 k.parallel), k.vectorized, k.mem_bytes)
  in
  (* blockized microkernel nests ([is_mk]) run register-tiled flat
     loops: [Machine.mk_lanes] of the SIMD width plus [mk_overhead]
     launch latency, but they keep the nest's own memory traffic — they
     are not cache-oblivious like a vendor BLAS *)
  Machine.charge_kernel ctx.sp ~atomic_rmws:k.atomics
    ~microkernel:(k.is_mk && not k.is_lib) m ~parallel_iters ~vectorized
    ~flops:k.flops ~l2_bytes:l2 ~footprint_bytes:footprint ~live_bytes:live

(** Estimate the metrics of running [fn] once on [device], along with a
    per-kernel breakdown [(sid of the kernel root statement, metrics)] in
    launch order — the same kernel segmentation the executors use when
    profiling, so the breakdown lines up with
    {!Ft_profile.Profile.kernels} one-to-one.

    [sizes] binds symbolic size parameters; [unknown_extent] is assumed
    for loop trips the model cannot evaluate (data-dependent bounds such
    as CSR row degrees). *)
let estimate_kernels ?(sizes = []) ?(unknown_extent = 8.0)
    ~(device : Types.device) (fn : Stmt.func) :
    Machine.metrics * (int * Machine.metrics) list =
  let sp = Machine.of_device device in
  let ctx =
    { sp; fn_name = fn.Stmt.fn_name; sizes = Hashtbl.create 16;
      tensors = Hashtbl.create 16; unknown_extent }
  in
  List.iter (fun (n, v) -> Hashtbl.replace ctx.sizes n (float_of_int v)) sizes;
  List.iter
    (fun (p : Stmt.param) ->
      match p.Stmt.p_shape with
      | Stmt.Fixed es ->
        Hashtbl.replace ctx.tensors p.Stmt.p_name
          { te_dtype = p.Stmt.p_dtype;
            te_mtype =
              (match p.Stmt.p_mtype with
               | Types.By_value -> Types.By_value
               | _ -> Types.default_mtype device);
            te_shape = es }
      | Stmt.Any_dim -> ())
    fn.Stmt.fn_params;
  let m = Machine.fresh_metrics () in
  let per_kernel = ref [] in
  let base_live =
    List.fold_left
      (fun acc (p : Stmt.param) -> acc +. tensor_bytes ctx p.Stmt.p_name)
      0.0 fn.Stmt.fn_params
  in
  (* host-level walk: every top-level non-Var_def statement is a kernel *)
  let rec host live (s : Stmt.t) =
    match s.Stmt.node with
    | Stmt.Seq ss -> List.iter (host live) ss
    | Stmt.Var_def d ->
      Hashtbl.replace ctx.tensors d.Stmt.d_name
        { te_dtype = d.Stmt.d_dtype; te_mtype = d.Stmt.d_mtype;
          te_shape = d.Stmt.d_shape };
      let sz =
        match d.Stmt.d_mtype with
        | Types.Cpu_heap | Types.Gpu_global -> tensor_bytes ctx d.Stmt.d_name
        | _ -> 0.0
      in
      host (live +. sz) d.Stmt.d_body;
      Hashtbl.remove ctx.tensors d.Stmt.d_name
    | Stmt.Nop -> ()
    | _ ->
      let km = Machine.fresh_metrics () in
      charge_kernel ctx km ~live s;
      per_kernel := (s.Stmt.sid, km) :: !per_kernel;
      Machine.add_into ~into:m km
  in
  host base_live fn.Stmt.fn_body;
  (m, List.rev !per_kernel)

(** Total-only variant of {!estimate_kernels}. *)
let estimate ?sizes ?unknown_extent ~(device : Types.device)
    (fn : Stmt.func) : Machine.metrics =
  fst (estimate_kernels ?sizes ?unknown_extent ~device fn)
