(** Differential + soundness oracle for one (program, schedule) pair.

    A pair that survives schedule application is checked on five legs:

    - {b differential}: the scheduled program through the reference
      interpreter, the closure compiler (sequential) and the closure
      compiler with [~parallel:true] must all produce outputs bitwise
      equal to the interpreter's run of the {e unscheduled} program —
      schedules are semantics-preserving by contract, and the executors
      must agree to the last mantissa bit;
    - {b lowering}: the {!Ft_lower.Pass} pipeline applied to the
      scheduled program, run through the interpreter, must be bitwise
      equal to the interpreter on the unlowered scheduled program — the
      IR-to-IR passes preserve per-element accumulation order exactly;
    - {b bound soundness}: {!Ft_analyze.Boundcheck} verdicts are
      cross-checked against the memory sanitizers — a fault under
      [~guard:true] from a program whose sites were all [Proved] means
      the static prover lied;
    - {b race soundness}: {!Ft_analyze.Race} verdicts are cross-checked
      against the dynamic race sanitizer — an observed race on a loop
      the verifier called [Safe]/[Safe_with_atomics] means the verifier
      lied.  Races on [Racy] loops are expected (the compiled executor
      demotes those loops to sequential).

    Expect-[Fault] cases (the corpus's out-of-bounds witnesses) instead
    demand that both guarded executors fault with byte-identical
    diagnostics.

    The oracle is split in two so the harness can shard it: {!check_seq}
    is safe to run inside an {!Ft_backend.Exec_par} worker domain (it
    never touches the domain pool, fresh-name counters or other
    non-thread-safe global state); {!check_par} runs the
    [~parallel:true] leg and is kept on the master domain so its
    parallel regions actually exercise the worker pool — a
    {!Ft_backend.Exec_par.run_chunks} issued from inside pool work runs
    its chunks inline on one domain (bitwise-identical, but not the leg
    this oracle is for). *)

open Ft_ir
open Ft_backend
open Ft_runtime

type expect =
  | Pass   (** in-bounds by construction: executors must agree *)
  | Fault  (** deliberate OOB witness: guarded executors must fault *)

type failure = {
  fail_stage : string;  (** e.g. ["interp-vs-compiled-seq"] *)
  fail_detail : string;
}

type outcome =
  | Ok_pass
  | Fail of failure

(** Optional miscompile injection, for validating that the harness
    actually catches bugs: the mutation is applied to the function
    handed to the {e compiled} legs only, so the differential legs see
    an executor that computes something subtly wrong.  [`Off_by_one]
    rewrites the first store/reduce targeting [y] to hit
    [(index + 1) mod 12] — in bounds, wrong cell. *)
type mutation = [ `None | `Off_by_one ]

let mutate_func (m : mutation) (fn : Stmt.func) : Stmt.func =
  match m with
  | `None -> fn
  | `Off_by_one ->
    let done_ = ref false in
    let rot e = Expr.mod_ (Expr.add e (Expr.int 1)) (Expr.int Gen_prog.n_x) in
    let body =
      Stmt.map_bottom_up
        (fun s ->
          match s.Stmt.node with
          | Stmt.Store ({ Stmt.s_var = "y"; s_indices = [ e ]; _ } as st)
            when not !done_ ->
            done_ := true;
            Stmt.with_node s (Stmt.Store { st with Stmt.s_indices = [ rot e ] })
          | Stmt.Reduce_to ({ Stmt.r_var = "y"; r_indices = [ e ]; _ } as rd)
            when not !done_ ->
            done_ := true;
            Stmt.with_node s
              (Stmt.Reduce_to { rd with Stmt.r_indices = [ rot e ] })
          | _ -> s)
        fn.Stmt.fn_body
    in
    { fn with Stmt.fn_body = body }

(* ------------------------------------------------------------------ *)

let bits_equal (a : Tensor.t) (b : Tensor.t) =
  let fa = Tensor.to_float_array a and fb = Tensor.to_float_array b in
  Array.length fa = Array.length fb
  && (let ok = ref true in
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float fb.(i) then
            ok := false)
        fa;
      !ok)

(* Transformations may legitimately reassociate floating-point
   reductions (reorder, fuse, parallelize all commute reduction order —
   the dependence checker treats reductions as commutative), so the
   base-program-vs-scheduled-program comparison uses a tolerance.  The
   executor-vs-executor comparison on the *same* scheduled program stays
   bitwise: executors have no rounding freedom. *)
let approx_equal (a : Tensor.t) (b : Tensor.t) =
  let fa = Tensor.to_float_array a and fb = Tensor.to_float_array b in
  Array.length fa = Array.length fb
  && (let ok = ref true in
      Array.iteri
        (fun i v ->
          let w = fb.(i) in
          let tol = 1e-5 *. Float.max 1.0 (Float.max (Float.abs v) (Float.abs w)) in
          if not (Float.abs (v -. w) <= tol) then ok := false)
        fa;
      !ok)

let first_diff (a : Tensor.t) (b : Tensor.t) =
  let fa = Tensor.to_float_array a and fb = Tensor.to_float_array b in
  let where = ref (-1) in
  Array.iteri
    (fun i v ->
      if !where < 0 && Int64.bits_of_float v <> Int64.bits_of_float fb.(i)
      then where := i)
    fa;
  if !where < 0 then "no differing element"
  else
    Printf.sprintf "element %d: %h vs %h" !where fa.(!where) fb.(!where)

let fresh_args () = Gen_prog.fresh_args ()

let run_quiet f =
  (* The compiled executor reports `Fallback demotions through
     [race_logger]; expected demotions of Racy loops would flood the
     harness's progress stream. *)
  let saved = !Compile_exec.race_logger in
  Compile_exec.race_logger := ignore;
  Fun.protect ~finally:(fun () -> Compile_exec.race_logger := saved) f

let diag_of = function
  | Diag.Diag_error d -> Some (Diag.to_string d)
  | _ -> None

(* Interp ~guard rejects argument-binding problems with Interp_error; a
   litmus program never has those, so only Diag faults are expected. *)
let guarded_fault (run : unit -> unit) : string option =
  match run () with
  | () -> None
  | exception e -> ( match diag_of e with Some d -> Some d | None -> raise e)

let check_outputs ?(approx = false) ~stage ~refs args =
  let eq = if approx then approx_equal else bits_equal in
  let ref_y, ref_z = refs in
  let y, z = Gen_prog.outputs args in
  if not (eq ref_y y) then
    Some { fail_stage = stage;
           fail_detail = "y diverges: " ^ first_diff ref_y y }
  else if not (eq ref_z z) then
    Some { fail_stage = stage;
           fail_detail = "z diverges: " ^ first_diff ref_z z }
  else None

(* ------------------------------------------------------------------ *)

(** Stages that are safe inside a worker domain.  [base] is the
    unscheduled program, [sched] the scheduled one (both already built —
    the oracle itself never runs [Names.fresh] or schedule application,
    which are master-only). *)
let check_seq ?(mutation = `None) ~(base : Stmt.func) ~(sched : Stmt.func)
    (expect : expect) : outcome =
  let mutant = mutate_func mutation sched in
  try
    run_quiet @@ fun () ->
    match expect with
    | Fault -> (
      (* Both guarded executors must fault, with byte-identical
         first-fault diagnostics. *)
      let args_i = fresh_args () in
      let d_interp =
        guarded_fault (fun () -> Interp.run_func ~guard:true sched args_i)
      in
      let args_c = fresh_args () in
      let d_comp =
        guarded_fault (fun () ->
            Compile_exec.run_func ~guard:true mutant args_c)
      in
      match (d_interp, d_comp) with
      | Some di, Some dc when di = dc -> Ok_pass
      | Some di, Some dc ->
        Fail { fail_stage = "guard-diag-differential";
               fail_detail =
                 Printf.sprintf "diagnostics differ:\n  interp: %s\n  compiled: %s"
                   di dc }
      | None, _ ->
        Fail { fail_stage = "guard-expect-fault";
               fail_detail = "interpreter guard did not fault" }
      | _, None ->
        Fail { fail_stage = "guard-expect-fault";
               fail_detail = "compiled guard did not fault" })
    | Pass -> (
      (* Semantic reference: interpreter on the unscheduled program. *)
      let base_args = fresh_args () in
      Interp.run_func base base_args;
      let base_refs = Gen_prog.outputs base_args in
      (* Executor reference: interpreter on the scheduled program. *)
      let sched_args = fresh_args () in
      Interp.run_func sched sched_args;
      let refs = Gen_prog.outputs sched_args in
      (* Leg 1: the transformation preserved semantics.  Approximate —
         reorder/fuse/parallelize may reassociate float reductions. *)
      match
        check_outputs ~approx:true ~stage:"transform-semantics"
          ~refs:base_refs sched_args
      with
      | Some f -> Fail f
      | None -> (
        (* Leg 2: compiled sequential, bitwise against the interpreter
           on the same scheduled program. *)
        let args = fresh_args () in
        Compile_exec.run_func mutant args;
        match check_outputs ~stage:"interp-vs-compiled-seq" ~refs args with
        | Some f -> Fail f
        | None -> (
        (* Leg 2b: the IR lowering pipeline is bitwise
           semantics-preserving on its own — interpret the lowered tree
           and compare against the interpreter on the unlowered
           scheduled program.  Bitwise, not approximate: every lowering
           pass (normalize, guard hoisting, blockization) keeps the
           per-output-element accumulation order. *)
        let lowered = Ft_lower.Pass.lower sched in
        let args = fresh_args () in
        Interp.run_func lowered args;
        match
          check_outputs ~stage:"interp-vs-interp-lowered" ~refs args
        with
        | Some f -> Fail f
        | None -> (
          (* Leg 3: bound soundness.  Litmus programs are in-bounds by
             construction, so any guarded fault is a finding; a fault at
             a Proved site is a prover-soundness hard failure. *)
          let sites = Ft_analyze.Boundcheck.check_func sched in
          let all_proved = Ft_analyze.Boundcheck.all_proved sites in
          let args = fresh_args () in
          match
            guarded_fault (fun () ->
                Interp.run_func ~guard:true sched args)
          with
          | Some d ->
            let stage =
              if all_proved then "boundcheck-soundness" else "guard-fault"
            in
            Fail { fail_stage = stage;
                   fail_detail = "interpreter guard fault: " ^ d }
          | None -> (
            let args = fresh_args () in
            match
              guarded_fault (fun () ->
                  Compile_exec.run_func ~guard:true mutant args)
            with
            | Some d ->
              let stage =
                if all_proved then "boundcheck-soundness" else "guard-fault"
              in
              Fail { fail_stage = stage;
                     fail_detail = "compiled guard fault: " ^ d }
            | None -> (
              (* Leg 4: race soundness.  Observed race on a loop the
                 static verifier declared Safe / Safe_with_atomics. *)
              let reports = Ft_analyze.Race.check_func sched in
              let races = Interp.sanitize_func sched (fresh_args ()) in
              let unsound =
                List.filter
                  (fun (r : Interp.race) ->
                    List.exists
                      (fun (lr : Ft_analyze.Race.loop_report) ->
                        lr.Ft_analyze.Race.lr_sid = r.Interp.race_loop
                        && not
                             (Ft_analyze.Race.is_racy
                                lr.Ft_analyze.Race.lr_verdict))
                      reports)
                  races
              in
              match unsound with
              | r :: _ ->
                Fail { fail_stage = "race-soundness";
                       fail_detail =
                         "sanitizer observed a race on a loop the static \
                          verifier called safe: "
                         ^ Interp.race_to_string r }
              | [] -> Ok_pass))))))
  with e ->
    Fail { fail_stage = "exception";
           fail_detail = Printexc.to_string e }

(** The [~parallel:true] leg.  Master domain only: issued from a worker,
    its parallel regions would run inline on that one domain instead of
    exercising the {!Exec_par} pool. *)
let check_par ?(mutation = `None) ~base:(_ : Stmt.func) ~(sched : Stmt.func)
    (expect : expect) : outcome =
  match expect with
  | Fault -> Ok_pass
  | Pass -> (
    let mutant = mutate_func mutation sched in
    try
      run_quiet @@ fun () ->
      let ref_args = fresh_args () in
      Interp.run_func sched ref_args;
      let refs = Gen_prog.outputs ref_args in
      let args = fresh_args () in
      Compile_exec.run_func ~parallel:true mutant args;
      match check_outputs ~stage:"interp-vs-compiled-par" ~refs args with
      | Some f -> Fail f
      | None -> Ok_pass
    with e ->
      Fail { fail_stage = "exception-par";
             fail_detail = Printexc.to_string e })

(** Full check; master domain only. *)
let check ?(mutation = `None) ~base ~sched expect : outcome =
  match check_seq ~mutation ~base ~sched expect with
  | Fail f -> Fail f
  | Ok_pass -> check_par ~mutation ~base ~sched expect
