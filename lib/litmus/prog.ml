(** Litmus program skeletons: the bounded vocabulary the exhaustive
    transformation-correctness harness enumerates over.

    A skeleton is a tiny, fully serializable program over the shared test
    signature of {!Gen_prog} (x: f32[12], m: f32[4,6], idx: i32[12],
    y: f32[12], z: f32[4,6]).  The vocabulary is curated the way
    TransForm curates litmus-test events: a fixed alphabet of access
    shapes — regular, strided, non-injective, indirect, data-dependent
    bounds, locals, reductions — whose closure under nesting covers the
    corner cases schedule transformations actually disagree on, while
    staying small enough to enumerate to exhaustion at a bound.

    Every subscript except the deliberate {!L_st_y_oob} witness is
    mod-wrapped to its dimension, so enumerated programs never fault;
    under the memory sanitizer, any fault on an enumerated program is
    itself a finding.  Skeletons are pure data: building the IR twice
    yields alpha-equivalent functions (fresh iterator names), which is
    exactly what {!canonical_hash} quotients away. *)

open Ft_ir

(* Dimensions of the fixed signature, shared with Gen_prog. *)
let n_x = Gen_prog.n_x
let m_r = Gen_prog.m_r
let m_c = Gen_prog.m_c

(** Subscript shapes.  [d] in the comments is the dimension the leaf
    wraps the expression with ([mod d]). *)
type ix =
  | Ix_it        (** innermost enclosing iterator *)
  | Ix_it2       (** [2*i + 1]: strided, non-unit *)
  | Ix_div       (** [i / 2]: non-injective (aliases adjacent iters) *)
  | Ix_outer     (** next-outer enclosing iterator *)
  | Ix_ind       (** [idx[i mod 12]]: indirect, data-dependent *)
  | Ix_c of int  (** constant *)

(** Value shapes (float expressions). *)
type value =
  | V_c           (** the literal 0.5 *)
  | V_x of ix     (** [x[e mod 12]] *)
  | V_xi          (** [x[idx[i mod 12]]]: indirect load *)
  | V_m of ix * ix  (** [m[a mod 4, b mod 6]] *)
  | V_sum         (** [x[i mod 12] + m[i mod 4, i mod 6]] *)
  | V_prod        (** [x[i mod 12] * m[i mod 4, i mod 6]]: the
                      multi-tensor product shape blockization keys on *)
  | V_t of ix     (** innermost local [t[e mod dim]]; [x] when no local *)

(** Leaf statements.  Local targets fall back to [y] outside a local. *)
type leaf =
  | L_st_y of ix * value         (** [y[e mod 12] = v] *)
  | L_rd_y of ix * value         (** [y[e mod 12] += v] *)
  | L_st_z of ix * ix * value    (** [z[a mod 4, b mod 6] = v] *)
  | L_rd_z_max of ix * ix * value  (** [z[a,b] max= v] *)
  | L_st_t of ix * value         (** innermost local [t[e mod dim] = v] *)
  | L_rd_t of ix * value         (** innermost local [t[e mod dim] += v] *)
  | L_st_y_oob of ix * value
      (** [y[e + 64] = v], NOT mod-wrapped: the out-of-bounds witness.
          Never enumerated; reachable only from corpus files. *)

type node =
  | Leaf of leaf
  | Loop of { len : int; par : bool; dyn : bool; body : node list }
      (** [for i in 0..len) body]; [par] annotates [Openmp] (legality
          deliberately unchecked: that is the verifier's job); [dyn]
          replaces the bound with the data-dependent
          [(idx[0] mod len) + 1]. *)
  | If of { parity : bool; body : node list }
      (** guard on the innermost iterator: [i mod 2 == 0] when [parity],
          else [i <= 1] *)
  | Local of { dim : int; body : node list }
      (** [t : f32[dim]] zero-initialized local scoped over [body] *)

type t = node list

(* ------------------------------------------------------------------ *)
(* Size / depth *)

let rec node_size = function
  | Leaf _ -> 1
  | Loop { body; _ } | If { body; _ } | Local { body; _ } ->
    1 + size body

and size (p : t) = List.fold_left (fun a n -> a + node_size n) 0 p

let rec node_depth = function
  | Leaf _ -> 0
  | Loop { body; _ } -> 1 + depth body
  | If { body; _ } | Local { body; _ } -> depth body

and depth (p : t) = List.fold_left (fun a n -> max a (node_depth n)) 0 p

(* ------------------------------------------------------------------ *)
(* Lowering to IR *)

let par_property =
  { Stmt.default_property with Stmt.parallel = Some Types.Openmp }

(* [iters] is innermost-first; a missing iterator degrades to a
   distinct constant so the same leaf stays meaningful (and distinct
   leaves stay distinct) at top level. *)
let it iters d =
  match List.nth_opt iters d with
  | Some v -> Expr.var v
  | None -> Expr.int (d + 1)

let ix_expr iters = function
  | Ix_it -> it iters 0
  | Ix_it2 -> Expr.add (Expr.mul (Expr.int 2) (it iters 0)) (Expr.int 1)
  | Ix_div -> Expr.floor_div (it iters 0) (Expr.int 2)
  | Ix_outer -> it iters 1
  | Ix_ind ->
    Expr.load "idx" [ Expr.mod_ (it iters 0) (Expr.int n_x) ]
  | Ix_c k -> Expr.int k

let wrap iters dim e = Expr.mod_ (ix_expr iters e) (Expr.int dim)

(* innermost local in scope: (name, dim) *)
let value_expr iters (local : (string * int) option) = function
  | V_c -> Expr.float 0.5
  | V_x e -> Expr.load "x" [ wrap iters n_x e ]
  | V_xi ->
    Expr.load "x"
      [ Expr.load "idx" [ Expr.mod_ (it iters 0) (Expr.int n_x) ] ]
  | V_m (a, b) -> Expr.load "m" [ wrap iters m_r a; wrap iters m_c b ]
  | V_sum ->
    Expr.add
      (Expr.load "x" [ Expr.mod_ (it iters 0) (Expr.int n_x) ])
      (Expr.load "m"
         [ Expr.mod_ (it iters 0) (Expr.int m_r);
           Expr.mod_ (it iters 0) (Expr.int m_c) ])
  | V_prod ->
    Expr.mul
      (Expr.load "x" [ Expr.mod_ (it iters 0) (Expr.int n_x) ])
      (Expr.load "m"
         [ Expr.mod_ (it iters 0) (Expr.int m_r);
           Expr.mod_ (it iters 0) (Expr.int m_c) ])
  | V_t e -> (
    match local with
    | Some (t, dim) -> Expr.load t [ wrap iters dim e ]
    | None -> Expr.load "x" [ wrap iters n_x e ])

let leaf_stmt iters local leaf =
  let v value = value_expr iters local value in
  match leaf with
  | L_st_y (e, value) -> Stmt.store "y" [ wrap iters n_x e ] (v value)
  | L_rd_y (e, value) ->
    Stmt.reduce_to "y" [ wrap iters n_x e ] Types.R_add (v value)
  | L_st_z (a, b, value) ->
    Stmt.store "z" [ wrap iters m_r a; wrap iters m_c b ] (v value)
  | L_rd_z_max (a, b, value) ->
    Stmt.reduce_to "z"
      [ wrap iters m_r a; wrap iters m_c b ]
      Types.R_max (v value)
  | L_st_t (e, value) -> (
    match local with
    | Some (t, dim) -> Stmt.store t [ wrap iters dim e ] (v value)
    | None -> Stmt.store "y" [ wrap iters n_x e ] (v value))
  | L_rd_t (e, value) -> (
    match local with
    | Some (t, dim) ->
      Stmt.reduce_to t [ wrap iters dim e ] Types.R_add (v value)
    | None -> Stmt.reduce_to "y" [ wrap iters n_x e ] Types.R_add (v value))
  | L_st_y_oob (e, value) ->
    Stmt.store "y" [ Expr.add (ix_expr iters e) (Expr.int 64) ] (v value)

let rec node_stmt iters local = function
  | Leaf l -> leaf_stmt iters local l
  | Loop { len; par; dyn; body } ->
    let iter = Names.fresh "li" in
    let f_end =
      if dyn then
        Expr.add
          (Expr.mod_ (Expr.load "idx" [ Expr.int 0 ]) (Expr.int len))
          (Expr.int 1)
      else Expr.int len
    in
    let property = if par then par_property else Stmt.default_property in
    Stmt.for_ ~property iter (Expr.int 0) f_end
      (body_stmt (iter :: iters) local body)
  | If { parity; body } ->
    let cond =
      if parity then Expr.eq (Expr.mod_ (it iters 0) (Expr.int 2)) (Expr.int 0)
      else Expr.le (it iters 0) (Expr.int 1)
    in
    Stmt.if_ cond (body_stmt iters local body) None
  | Local { dim; body } ->
    let t = Names.fresh "lt" in
    let zi = Names.fresh "lz" in
    let init =
      Stmt.for_ zi (Expr.int 0) (Expr.int dim)
        (Stmt.store t [ Expr.var zi ] (Expr.float 0.))
    in
    Stmt.var_def t Types.F32 Types.Cpu_stack [ Expr.int dim ]
      (Stmt.seq [ init; body_stmt iters (Some (t, dim)) body ])

and body_stmt iters local body =
  Stmt.seq (List.map (node_stmt iters local) body)

(** Lower a skeleton to an IR function over the shared signature. *)
let to_func ?(name = "litmus") (p : t) : Stmt.func =
  Stmt.func name Gen_prog.params (body_stmt [] None p)

(* ------------------------------------------------------------------ *)
(* Canonical hash *)

(* The canonical form/hash is shared infrastructure now: the serving
   layer keys its compiled-artifact cache on the same quotient the
   harness dedups by.  The implementation lives in {!Ft_ir.Canon}. *)

let canonical_string = Canon.canonical_string

(** Hex MD5 of {!canonical_string}: collides exactly for
    alpha-equivalent programs. *)
let canonical_hash = Canon.canonical_hash

(* ------------------------------------------------------------------ *)
(* Corpus text format *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let ix_to_string = function
  | Ix_it -> "it"
  | Ix_it2 -> "it2"
  | Ix_div -> "div"
  | Ix_outer -> "outer"
  | Ix_ind -> "ind"
  | Ix_c k -> "c" ^ string_of_int k

let ix_of_string = function
  | "it" -> Ix_it
  | "it2" -> Ix_it2
  | "div" -> Ix_div
  | "outer" -> Ix_outer
  | "ind" -> Ix_ind
  | s
    when String.length s > 1
         && s.[0] = 'c'
         && Option.is_some
              (int_of_string_opt (String.sub s 1 (String.length s - 1))) ->
    Ix_c (int_of_string (String.sub s 1 (String.length s - 1)))
  | s -> parse_fail "bad subscript %S" s

let value_to_string = function
  | V_c -> "c"
  | V_x e -> "x:" ^ ix_to_string e
  | V_xi -> "xi"
  | V_m (a, b) -> Printf.sprintf "m:%s:%s" (ix_to_string a) (ix_to_string b)
  | V_sum -> "sum"
  | V_prod -> "prod"
  | V_t e -> "t:" ^ ix_to_string e

let value_of_string s =
  match String.split_on_char ':' s with
  | [ "c" ] -> V_c
  | [ "x"; e ] -> V_x (ix_of_string e)
  | [ "xi" ] -> V_xi
  | [ "m"; a; b ] -> V_m (ix_of_string a, ix_of_string b)
  | [ "sum" ] -> V_sum
  | [ "prod" ] -> V_prod
  | [ "t"; e ] -> V_t (ix_of_string e)
  | _ -> parse_fail "bad value %S" s

let rec node_to_string = function
  | Leaf (L_st_y (e, v)) ->
    Printf.sprintf "(y= %s %s)" (ix_to_string e) (value_to_string v)
  | Leaf (L_rd_y (e, v)) ->
    Printf.sprintf "(y+ %s %s)" (ix_to_string e) (value_to_string v)
  | Leaf (L_st_z (a, b, v)) ->
    Printf.sprintf "(z= %s %s %s)" (ix_to_string a) (ix_to_string b)
      (value_to_string v)
  | Leaf (L_rd_z_max (a, b, v)) ->
    Printf.sprintf "(zmax %s %s %s)" (ix_to_string a) (ix_to_string b)
      (value_to_string v)
  | Leaf (L_st_t (e, v)) ->
    Printf.sprintf "(t= %s %s)" (ix_to_string e) (value_to_string v)
  | Leaf (L_rd_t (e, v)) ->
    Printf.sprintf "(t+ %s %s)" (ix_to_string e) (value_to_string v)
  | Leaf (L_st_y_oob (e, v)) ->
    Printf.sprintf "(yoob %s %s)" (ix_to_string e) (value_to_string v)
  | Loop { len; par; dyn; body } ->
    Printf.sprintf "(for %d%s%s %s)" len
      (if par then " par" else "")
      (if dyn then " dyn" else "")
      (to_string body)
  | If { parity; body } ->
    Printf.sprintf "(if %s %s)" (if parity then "even" else "le1")
      (to_string body)
  | Local { dim; body } ->
    Printf.sprintf "(local %d %s)" dim (to_string body)

and to_string (p : t) = String.concat " " (List.map node_to_string p)

(* s-expression reader: '(' atom* ... ')' nested *)
type sexp =
  | Atom of string
  | List of sexp list

let tokenize (s : string) : string list =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' ->
        flush ();
        out := String.make 1 c :: !out
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

let parse_sexps (tokens : string list) : sexp list =
  let rec parse_list acc = function
    | [] -> (List.rev acc, [])
    | ")" :: rest -> (List.rev acc, rest)
    | "(" :: rest ->
      let inner, rest = parse_inner rest in
      parse_list (List inner :: acc) rest
    | tok :: rest -> parse_list (Atom tok :: acc) rest
  and parse_inner tokens =
    let rec go acc = function
      | [] -> parse_fail "unterminated '('"
      | ")" :: rest -> (List.rev acc, rest)
      | "(" :: rest ->
        let inner, rest = parse_inner rest in
        go (List inner :: acc) rest
      | tok :: rest -> go (Atom tok :: acc) rest
    in
    go [] tokens
  in
  let sexps, rest = parse_list [] tokens in
  (match rest with
   | [] -> ()
   | _ -> parse_fail "unbalanced ')'");
  sexps

let rec node_of_sexp = function
  | Atom a -> parse_fail "expected a statement, got atom %S" a
  | List (Atom "y=" :: [ Atom e; Atom v ]) ->
    Leaf (L_st_y (ix_of_string e, value_of_string v))
  | List (Atom "y+" :: [ Atom e; Atom v ]) ->
    Leaf (L_rd_y (ix_of_string e, value_of_string v))
  | List (Atom "z=" :: [ Atom a; Atom b; Atom v ]) ->
    Leaf (L_st_z (ix_of_string a, ix_of_string b, value_of_string v))
  | List (Atom "zmax" :: [ Atom a; Atom b; Atom v ]) ->
    Leaf (L_rd_z_max (ix_of_string a, ix_of_string b, value_of_string v))
  | List (Atom "t=" :: [ Atom e; Atom v ]) ->
    Leaf (L_st_t (ix_of_string e, value_of_string v))
  | List (Atom "t+" :: [ Atom e; Atom v ]) ->
    Leaf (L_rd_t (ix_of_string e, value_of_string v))
  | List (Atom "yoob" :: [ Atom e; Atom v ]) ->
    Leaf (L_st_y_oob (ix_of_string e, value_of_string v))
  | List (Atom "for" :: Atom len :: rest) ->
    let len =
      match int_of_string_opt len with
      | Some n when n > 0 -> n
      | _ -> parse_fail "bad loop length %S" len
    in
    let rec flags par dyn = function
      | Atom "par" :: rest -> flags true dyn rest
      | Atom "dyn" :: rest -> flags par true rest
      | rest -> (par, dyn, rest)
    in
    let par, dyn, body = flags false false rest in
    Loop { len; par; dyn; body = List.map node_of_sexp body }
  | List (Atom "if" :: Atom g :: body) ->
    let parity =
      match g with
      | "even" -> true
      | "le1" -> false
      | _ -> parse_fail "bad guard %S" g
    in
    If { parity; body = List.map node_of_sexp body }
  | List (Atom "local" :: Atom dim :: body) ->
    let dim =
      match int_of_string_opt dim with
      | Some n when n > 0 -> n
      | _ -> parse_fail "bad local dim %S" dim
    in
    Local { dim; body = List.map node_of_sexp body }
  | List (Atom a :: _) -> parse_fail "unknown statement head %S" a
  | List _ -> parse_fail "malformed statement"

(** Parse the output of {!to_string}; raises {!Parse_error}. *)
let of_string (s : string) : t =
  List.map node_of_sexp (parse_sexps (tokenize s))
