(** Greedy failure minimizer.

    Given a (program, steps) pair the oracle rejects, repeatedly try
    strictly-smaller candidates — truncate or drop schedule steps, drop
    a statement, splice a structured node's body into its place, shrink
    a loop bound, demote a dynamic bound or a parallel annotation — and
    commit to the first candidate that {e still fails}; stop at a local
    fixpoint.  Every accepted candidate strictly decreases
    (statement count, loop lengths, flag count, step count), so the loop
    terminates.  The result is the self-contained regression case the
    harness writes to the corpus.

    Runs the full oracle per candidate, so: master domain only. *)

open Prog

(* All strictly-simpler variants of a program: node dropped, structured
   body spliced inline, loop shrunk/demoted — innermost candidates
   last so big cuts are tried first. *)
let rec prog_cands (p : Prog.t) : Prog.t list =
  match p with
  | [] -> []
  | n :: rest ->
    (rest
     ::
     (match n with
      | Loop { body; _ } | If { body; _ } | Local { body; _ } ->
        [ body @ rest ]
      | Leaf _ -> []))
    @ List.map (fun n' -> n' :: rest) (node_cands n)
    @ List.map (fun rest' -> n :: rest') (prog_cands rest)

and node_cands (n : node) : node list =
  match n with
  | Leaf _ -> []
  | Loop { len; par; dyn; body } ->
    (if len > 2 then [ Loop { len = 2; par; dyn; body } ] else [])
    @ (if dyn then [ Loop { len; par; dyn = false; body } ] else [])
    @ (if par then [ Loop { len; par = false; dyn; body } ] else [])
    @ List.map (fun b -> Loop { len; par; dyn; body = b }) (prog_cands body)
  | If { parity; body } ->
    List.map (fun b -> If { parity; body = b }) (prog_cands body)
  | Local { dim; body } ->
    List.map (fun b -> Local { dim; body = b }) (prog_cands body)

(* Step-sequence shrinks: empty first (biggest cut), then suffix
   truncation, then each single step removed (end first). *)
let steps_cands (steps : Step.t list) : Step.t list list =
  match steps with
  | [] -> []
  | _ ->
    let n = List.length steps in
    let without i = List.filteri (fun j _ -> j <> i) steps in
    ([] :: (if n > 1 then [ without (n - 1) ] else []))
    @ List.init (n - 1) (fun k -> without (n - 2 - k))

(** Minimize a failing case.  Returns the fixpoint case and the failure
    it still exhibits.  If [case] does not actually fail, returns it
    unchanged with [None]. *)
let shrink ?(mutation = `None) (c : Corpus.case) :
    Corpus.case * Oracle.failure option =
  let fails cand =
    match Replay.check ~mutation cand with
    | Ok (Some f) -> Some f
    | Ok None | Error _ -> None
  in
  match fails c with
  | None -> (c, None)
  | Some f0 ->
    let rec go c f =
      let cands =
        List.map (fun s -> { c with Corpus.c_steps = s })
          (steps_cands c.Corpus.c_steps)
        @ List.map (fun p -> { c with Corpus.c_prog = p })
            (prog_cands c.Corpus.c_prog)
      in
      let rec first = function
        | [] -> (c, Some f)
        | cand :: rest -> (
          match fails cand with
          | Some f' -> go cand f'
          | None -> first rest)
      in
      first cands
    in
    go c f0
