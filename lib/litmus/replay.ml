(** Rebuild and re-check a corpus case: skeleton -> IR, steps -> schedule
    application, then the full differential oracle.  Master domain only
    (schedule application allocates fresh names; the oracle's parallel
    leg drives the domain pool). *)

open Ft_sched

(** Lower the skeleton and apply the steps.  Raises {!Schedule.Invalid}
    when a step is inapplicable — for a committed corpus case that means
    the case is stale, which the replay test reports as a failure. *)
let funcs_of ~(prog : Prog.t) ~(steps : Step.t list) :
    Ft_ir.Stmt.func * Ft_ir.Stmt.func =
  let base = Prog.to_func prog in
  let sch = Schedule.of_func base in
  Step.apply_all sch steps;
  (base, Schedule.func sch)

(** [Error msg] = the step sequence is inapplicable; [Ok None] = the
    case passes; [Ok (Some f)] = the oracle failed at stage [f]. *)
let check ?(mutation = `None) (c : Corpus.case) :
    (Oracle.failure option, string) result =
  match funcs_of ~prog:c.Corpus.c_prog ~steps:c.Corpus.c_steps with
  | exception Schedule.Invalid m -> Error m
  | base, sched -> (
    match Oracle.check ~mutation ~base ~sched c.Corpus.c_expect with
    | Oracle.Ok_pass -> Ok None
    | Oracle.Fail f -> Ok (Some f))
