(** Self-contained regression cases: the [.litmus] file format.

    A case is a skeleton program, a schedule-step sequence and an
    expected outcome, serialized line-oriented so failures minimized by
    the shrinker can be committed under [test/corpus/] and replayed by
    [dune runtest] forever after:

    {v
    # free-form notes (ignored)
    expect pass
    prog (for 4 par (y+ div x:it))
    sched split 0 2
    sched parallelize 0
    v} *)

type case = {
  c_name : string;        (** basename, for reporting *)
  c_note : string list;   (** leading [#] comment lines, without the [#] *)
  c_expect : Oracle.expect;
  c_prog : Prog.t;
  c_steps : Step.t list;
}

let make ?(name = "case") ?(note = []) ~expect ~prog ~steps () =
  { c_name = name; c_note = note; c_expect = expect; c_prog = prog;
    c_steps = steps }

let to_string (c : case) : string =
  let buf = Buffer.create 256 in
  List.iter (fun l -> Buffer.add_string buf ("# " ^ l ^ "\n")) c.c_note;
  Buffer.add_string buf
    (match c.c_expect with Oracle.Pass -> "expect pass\n"
                         | Oracle.Fault -> "expect fault\n");
  Buffer.add_string buf ("prog " ^ Prog.to_string c.c_prog ^ "\n");
  List.iter
    (fun s -> Buffer.add_string buf ("sched " ^ Step.to_string s ^ "\n"))
    c.c_steps;
  Buffer.contents buf

exception Parse_error of string

let of_string ?(name = "case") (text : string) : case =
  let note = ref [] and expect = ref None and prog = ref None
  and steps = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         let fail fmt =
           Printf.ksprintf
             (fun m ->
               raise (Parse_error (Printf.sprintf "%s:%d: %s" name (lineno + 1) m)))
             fmt
         in
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then
           note := String.trim (String.sub line 1 (String.length line - 1))
                   :: !note
         else
           match String.index_opt line ' ' with
           | None when line = "expect" -> fail "expect needs pass|fault"
           | None -> fail "unrecognized line %S" line
           | Some sp -> (
             let head = String.sub line 0 sp in
             let rest =
               String.trim (String.sub line sp (String.length line - sp))
             in
             match head with
             | "expect" -> (
               match rest with
               | "pass" -> expect := Some Oracle.Pass
               | "fault" -> expect := Some Oracle.Fault
               | _ -> fail "bad expect %S" rest)
             | "prog" -> (
               if !prog <> None then fail "duplicate prog line";
               match Prog.of_string rest with
               | p -> prog := Some p
               | exception Prog.Parse_error m -> fail "%s" m)
             | "sched" -> (
               match Step.of_string rest with
               | s -> steps := s :: !steps
               | exception Step.Parse_error m -> fail "%s" m)
             | _ -> fail "unrecognized line %S" line));
  let expect =
    match !expect with
    | Some e -> e
    | None -> raise (Parse_error (name ^ ": missing expect line"))
  in
  let prog =
    match !prog with
    | Some p -> p
    | None -> raise (Parse_error (name ^ ": missing prog line"))
  in
  { c_name = name; c_note = List.rev !note; c_expect = expect; c_prog = prog;
    c_steps = List.rev !steps }

let load (path : string) : case =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~name:(Filename.basename path) text

let save (path : string) (c : case) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))

(** All [*.litmus] files in [dir], sorted by name; missing dir = []. *)
let load_dir (dir : string) : case list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
    |> List.sort compare
    |> List.map (fun f -> load (Filename.concat dir f))
