(** The exhaustive litmus driver: enumerate every skeleton within the
    bounds, dedup by canonical hash, grow every applicable schedule
    sequence up to the length bound (deduping the {e scheduled} programs
    too, so convergent sequences are checked once), and push every
    surviving (program, schedule) pair through the differential +
    soundness oracle.

    Sharding: the enumerator and the schedule DFS run on the master
    domain only (fresh-name counters and statement ids are process-global
    and not thread-safe), buffering checked pairs into batches; each
    batch's sequential oracle legs ({!Oracle.check_seq}) are striped
    across the {!Ft_backend.Exec_par} domain pool, then the parallel
    legs ({!Oracle.check_par}) run on the master, where their parallel
    regions really use the pool (from a worker they would run inline).
    Results land in per-item slots of a preallocated array,
    so counts and failure order are deterministic for any
    [FT_NUM_DOMAINS].

    Failures are minimized by {!Shrink} and written to the corpus
    directory in {!Corpus} format, ready to be committed as regression
    tests. *)

open Ft_backend

type config = {
  depth : int;          (** max loop-nesting depth *)
  stmts : int;          (** max statement-node count *)
  sched_len : int;      (** max schedule-sequence length *)
  budget : int;         (** max checked pairs; [0] = unlimited *)
  max_failures : int;   (** stop after this many failures; [0] = unlimited *)
  mutation : Oracle.mutation;
  corpus_dir : string option;  (** where shrunk failures are written *)
  progress : string -> unit;   (** progress-line sink *)
  progress_every : int;        (** status line every N checked pairs; 0 = off *)
}

let default_config =
  { depth = 1;
    stmts = 2;
    sched_len = 1;
    budget = 0;
    max_failures = 10;
    mutation = `None;
    corpus_dir = None;
    progress = ignore;
    progress_every = 0 }

type failure_case = {
  fc_case : Corpus.case;     (** minimized *)
  fc_failure : Oracle.failure;
  fc_file : string option;   (** corpus file written, if any *)
}

type stats = {
  mutable progs_total : int;    (** programs enumerated *)
  mutable progs_unique : int;   (** distinct canonical hashes *)
  mutable scheds_total : int;   (** applicable scheduled programs (incl. dups) *)
  mutable scheds_unique : int;  (** distinct scheduled canonical hashes *)
  mutable sched_rejects : int;  (** [Invalid_schedule] rejections (expected) *)
  mutable checked : int;        (** pairs through the oracle *)
  mutable failures : failure_case list;  (** newest first *)
  mutable exhausted : bool;     (** false iff stopped by budget/max_failures *)
}

let fresh_stats () =
  { progs_total = 0; progs_unique = 0; scheds_total = 0; scheds_unique = 0;
    sched_rejects = 0; checked = 0; failures = []; exhausted = true }

(* One (program, schedule) pair awaiting its oracle run. *)
type item = {
  it_base : Ft_ir.Stmt.func;
  it_sched : Ft_ir.Stmt.func;
  it_prog : Prog.t;
  it_steps : Step.t list;
}

exception Stop

let batch_size = 64

let run (cfg : config) : stats =
  let stats = fresh_stats () in
  let seen_progs : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let seen_scheds : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let pending : item list ref = ref [] in
  let n_pending = ref 0 in
  let failure_budget_left () =
    cfg.max_failures = 0 || List.length stats.failures < cfg.max_failures
  in
  let record_failure (it : item) (f : Oracle.failure) =
    let case =
      Corpus.make ~name:"shrinking"
        ~note:
          [ Printf.sprintf "stage: %s" f.Oracle.fail_stage;
            f.Oracle.fail_detail ]
        ~expect:Oracle.Pass ~prog:it.it_prog ~steps:it.it_steps ()
    in
    let case, f =
      match Shrink.shrink ~mutation:cfg.mutation case with
      | c, Some f' ->
        ({ c with
           Corpus.c_note =
             [ Printf.sprintf "stage: %s" f'.Oracle.fail_stage;
               f'.Oracle.fail_detail ] },
         f')
      | c, None -> (c, f)  (* non-reproducible on replay; keep original *)
    in
    let file =
      match cfg.corpus_dir with
      | None -> None
      | Some dir ->
        let base_fn = Prog.to_func case.Corpus.c_prog in
        let h = String.sub (Prog.canonical_hash base_fn) 0 8 in
        let path =
          Filename.concat dir (Printf.sprintf "shrunk-%s.litmus" h)
        in
        Corpus.save path case;
        Some path
    in
    stats.failures <-
      { fc_case = case; fc_failure = f; fc_file = file } :: stats.failures;
    cfg.progress
      (Printf.sprintf "FAILURE [%s] %s%s" f.Oracle.fail_stage
         f.Oracle.fail_detail
         (match file with None -> "" | Some p -> " -> " ^ p));
    if not (failure_budget_left ()) then begin
      stats.exhausted <- false;
      raise Stop
    end
  in
  (* Phase A striped across the pool; phase B + failure handling on the
     master, in item order, so the run is deterministic for any pool
     size. *)
  let flush () =
    let items = Array.of_list (List.rev !pending) in
    pending := [];
    n_pending := 0;
    let n_items = Array.length items in
    if n_items > 0 then begin
      let results = Array.make n_items Oracle.Ok_pass in
      let n = min (Exec_par.num_domains ()) n_items in
      Exec_par.run_chunks n (fun c ->
          let i = ref c in
          while !i < n_items do
            let it = items.(!i) in
            results.(!i) <-
              Oracle.check_seq ~mutation:cfg.mutation ~base:it.it_base
                ~sched:it.it_sched Oracle.Pass;
            i := !i + n
          done);
      Array.iteri
        (fun i it ->
          let outcome =
            match results.(i) with
            | Oracle.Fail _ as f -> f
            | Oracle.Ok_pass ->
              Oracle.check_par ~mutation:cfg.mutation ~base:it.it_base
                ~sched:it.it_sched Oracle.Pass
          in
          stats.checked <- stats.checked + 1;
          if cfg.progress_every > 0 && stats.checked mod cfg.progress_every = 0
          then
            cfg.progress
              (Printf.sprintf
                 "... checked %d pairs (%d/%d programs, %d/%d schedules, %d \
                  rejected)"
                 stats.checked stats.progs_unique stats.progs_total
                 stats.scheds_unique stats.scheds_total stats.sched_rejects);
          match outcome with
          | Oracle.Ok_pass -> ()
          | Oracle.Fail f -> record_failure items.(i) f)
        items
    end
  in
  let enqueue it =
    pending := it :: !pending;
    incr n_pending;
    if !n_pending >= batch_size then flush ();
    if cfg.budget > 0 && stats.checked + !n_pending >= cfg.budget then begin
      stats.exhausted <- false;
      raise Stop
    end
  in
  (* DFS over schedule sequences from an already-deduped scheduled
     state. *)
  let open Ft_sched in
  let rec dfs base prog fn steps remaining =
    enqueue { it_base = base; it_sched = fn; it_prog = prog; it_steps = steps };
    if remaining > 0 then begin
      let cands = Step.candidates (Schedule.of_func fn) in
      List.iter
        (fun step ->
          let sch = Schedule.of_func fn in
          match Step.apply sch step with
          | exception Schedule.Invalid _ ->
            stats.sched_rejects <- stats.sched_rejects + 1
          | () ->
            let fn' = Schedule.func sch in
            stats.scheds_total <- stats.scheds_total + 1;
            let h = Prog.canonical_hash fn' in
            if not (Hashtbl.mem seen_scheds h) then begin
              Hashtbl.add seen_scheds h ();
              stats.scheds_unique <- stats.scheds_unique + 1;
              dfs base prog fn' (steps @ [ step ]) (remaining - 1)
            end)
        cands
    end
  in
  (try
     Seq.iter
       (fun prog ->
         let base = Prog.to_func prog in
         stats.progs_total <- stats.progs_total + 1;
         let h = Prog.canonical_hash base in
         if not (Hashtbl.mem seen_progs h) then begin
           Hashtbl.add seen_progs h ();
           stats.progs_unique <- stats.progs_unique + 1;
           cfg.progress
             (Printf.sprintf "New hash (%d/%d): %s" stats.progs_unique
                stats.progs_total h);
           (* The empty schedule is a pair too: it differentially checks
              the executors on the raw program. *)
           stats.scheds_total <- stats.scheds_total + 1;
           if not (Hashtbl.mem seen_scheds h) then begin
             Hashtbl.add seen_scheds h ();
             stats.scheds_unique <- stats.scheds_unique + 1
           end;
           dfs base prog base [] cfg.sched_len
         end)
       (Enum.programs ~depth:cfg.depth ~stmts:cfg.stmts);
     flush ()
   with Stop -> ( try flush () with Stop -> ()));
  stats.failures <- List.rev stats.failures;
  stats

(** TransForm-style summary lines. *)
let report (stats : stats) : string list =
  [ Printf.sprintf "Programs: %d unique / %d total" stats.progs_unique
      stats.progs_total;
    Printf.sprintf "Schedules: %d unique / %d total (%d rejected as invalid)"
      stats.scheds_unique stats.scheds_total stats.sched_rejects;
    Printf.sprintf "Checked: %d pairs, %d failures%s" stats.checked
      (List.length stats.failures)
      (if stats.exhausted then " (exhausted)" else " (stopped early)");
    Printf.sprintf "Results,programs,%d,%d" stats.progs_unique
      stats.progs_total;
    Printf.sprintf "Results,schedules,%d,%d" stats.scheds_unique
      stats.scheds_total ]
