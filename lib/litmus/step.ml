(** Schedule steps for the litmus harness: a serializable, positional
    encoding of the {!Ft_sched.Schedule} primitives.

    Statement ids are process-global and change every time a skeleton is
    rebuilt, so a replayable step cannot name a statement by id.  Steps
    instead address loops by their {e index} into {!Schedule.all_loops}
    (pre-order over the current, possibly already-transformed program)
    and statement pairs by their index among consecutive [Seq] pairs.
    That makes a step sequence a pure value: applying the same sequence
    to alpha-equivalent programs performs the same transformations.

    [apply] raises {!Schedule.Invalid} for every inapplicable step —
    including out-of-range positions — which the enumerator records as
    an expected rejection, never a crash. *)

open Ft_ir
open Ft_sched

type t =
  | Split of int * int  (** loop index, factor *)
  | Merge of int        (** loop index; partner is its directly-nested loop *)
  | Reorder of int      (** loop index; partner is its directly-nested loop *)
  | Fission of int      (** loop index; cut after the first body statement *)
  | Fuse of int         (** index among consecutive (For, For) Seq pairs *)
  | Swap of int         (** index among consecutive Seq statement pairs *)
  | Unroll of int       (** loop index *)
  | Parallelize of int  (** loop index, [Openmp] scope *)
  | Vectorize of int    (** loop index *)
  | Cache of int * string         (** loop index, tensor *)
  | Cache_reduce of int * string  (** loop index, tensor *)

let to_string = function
  | Split (i, f) -> Printf.sprintf "split %d %d" i f
  | Merge i -> Printf.sprintf "merge %d" i
  | Reorder i -> Printf.sprintf "reorder %d" i
  | Fission i -> Printf.sprintf "fission %d" i
  | Fuse k -> Printf.sprintf "fuse %d" k
  | Swap k -> Printf.sprintf "swap %d" k
  | Unroll i -> Printf.sprintf "unroll %d" i
  | Parallelize i -> Printf.sprintf "parallelize %d" i
  | Vectorize i -> Printf.sprintf "vectorize %d" i
  | Cache (i, tensor) -> Printf.sprintf "cache %d %s" i tensor
  | Cache_reduce (i, tensor) -> Printf.sprintf "cache_reduce %d %s" i tensor

exception Parse_error of string

let of_string (s : string) : t =
  let num w =
    match int_of_string_opt w with
    | Some n -> n
    | None -> raise (Parse_error (Printf.sprintf "bad number %S in %S" w s))
  in
  match
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun w -> w <> "")
  with
  | [ "split"; i; f ] -> Split (num i, num f)
  | [ "merge"; i ] -> Merge (num i)
  | [ "reorder"; i ] -> Reorder (num i)
  | [ "fission"; i ] -> Fission (num i)
  | [ "fuse"; k ] -> Fuse (num k)
  | [ "swap"; k ] -> Swap (num k)
  | [ "unroll"; i ] -> Unroll (num i)
  | [ "parallelize"; i ] -> Parallelize (num i)
  | [ "vectorize"; i ] -> Vectorize (num i)
  | [ "cache"; i; tensor ] -> Cache (num i, tensor)
  | [ "cache_reduce"; i; tensor ] -> Cache_reduce (num i, tensor)
  | _ -> raise (Parse_error (Printf.sprintf "bad schedule step %S" s))

(* ------------------------------------------------------------------ *)
(* Positional resolution *)

let nth_loop sch i =
  match List.nth_opt (Schedule.all_loops sch) i with
  | Some l -> l
  | None -> Select.fail "litmus step: no loop #%d in current program" i

let sel_of (s : Stmt.t) = Schedule.By_id s.Stmt.sid

(* The loop directly nested in [l] (possibly through a singleton Seq),
   as merge/reorder require. *)
let inner_loop (l : Stmt.t) : Stmt.t =
  match l.Stmt.node with
  | Stmt.For f -> (
    match Select.directly_nested_loop f with
    | Some (inner, _) -> inner
    | None -> Select.fail "litmus step: loop %d has no directly nested loop"
                l.Stmt.sid)
  | _ -> Select.fail "litmus step: statement %d is not a loop" l.Stmt.sid

(* First statement of the loop's Seq body — the fission cut point. *)
let first_of_seq_body (l : Stmt.t) : Stmt.t =
  match l.Stmt.node with
  | Stmt.For { Stmt.f_body = { Stmt.node = Stmt.Seq (s :: _ :: _); _ }; _ } ->
    s
  | _ ->
    Select.fail "litmus step: loop %d body is not a multi-statement sequence"
      l.Stmt.sid

(* All consecutive statement pairs inside Seq nodes, pre-order. *)
let seq_pairs (root : Stmt.t) : (Stmt.t * Stmt.t) list =
  let out = ref [] in
  Stmt.iter
    (fun s ->
      match s.Stmt.node with
      | Stmt.Seq ss ->
        let rec go = function
          | a :: (b :: _ as rest) ->
            out := (a, b) :: !out;
            go rest
          | _ -> ()
        in
        go ss
      | _ -> ())
    root;
  List.rev !out

let is_for (s : Stmt.t) =
  match s.Stmt.node with Stmt.For _ -> true | _ -> false

let nth_pair sch ~loops_only k =
  let pairs = seq_pairs (Schedule.body sch) in
  let pairs =
    if loops_only then
      List.filter (fun (a, b) -> is_for a && is_for b) pairs
    else pairs
  in
  match List.nth_opt pairs k with
  | Some p -> p
  | None ->
    Select.fail "litmus step: no %s pair #%d in current program"
      (if loops_only then "consecutive-loop" else "consecutive-statement")
      k

(* ------------------------------------------------------------------ *)

(** Apply one step to the schedule's current state.  Raises
    {!Schedule.Invalid} when inapplicable (including positional
    out-of-range); the program is left unchanged in that case. *)
let apply (sch : Schedule.t) (step : t) : unit =
  match step with
  | Split (i, factor) ->
    ignore (Schedule.split sch (sel_of (nth_loop sch i)) ~factor)
  | Merge i ->
    let l = nth_loop sch i in
    ignore (Schedule.merge sch (sel_of l) (sel_of (inner_loop l)))
  | Reorder i ->
    let l = nth_loop sch i in
    Schedule.reorder sch (sel_of l) (sel_of (inner_loop l))
  | Fission i ->
    let l = nth_loop sch i in
    ignore (Schedule.fission sch (sel_of l) ~after:(sel_of (first_of_seq_body l)))
  | Fuse k ->
    let a, b = nth_pair sch ~loops_only:true k in
    ignore (Schedule.fuse sch (sel_of a) (sel_of b))
  | Swap k ->
    let a, b = nth_pair sch ~loops_only:false k in
    Schedule.swap sch (sel_of a) (sel_of b)
  | Unroll i -> Schedule.unroll sch (sel_of (nth_loop sch i))
  | Parallelize i ->
    Schedule.parallelize sch (sel_of (nth_loop sch i)) Types.Openmp
  | Vectorize i -> Schedule.vectorize sch (sel_of (nth_loop sch i))
  | Cache (i, tensor) ->
    ignore (Schedule.cache sch (sel_of (nth_loop sch i)) tensor Types.Cpu_stack)
  | Cache_reduce (i, tensor) ->
    ignore
      (Schedule.cache_reduce sch (sel_of (nth_loop sch i)) tensor
         Types.Cpu_stack)

let apply_all (sch : Schedule.t) (steps : t list) : unit =
  List.iter (apply sch) steps

(* ------------------------------------------------------------------ *)

(** Candidate steps against the schedule's current state, in a fixed
    deterministic order.  Purely positional — applicability is decided
    by actually applying each one to a copy, so this is a superset of
    the applicable steps, not a promise. *)
let candidates (sch : Schedule.t) : t list =
  let n_loops = List.length (Schedule.all_loops sch) in
  let pairs = seq_pairs (Schedule.body sch) in
  let n_pairs = List.length pairs in
  let n_loop_pairs =
    List.length (List.filter (fun (a, b) -> is_for a && is_for b) pairs)
  in
  let per_loop i =
    [ Split (i, 2);
      Split (i, 3);
      Merge i;
      Reorder i;
      Fission i;
      Unroll i;
      Parallelize i;
      Vectorize i;
      Cache (i, "x");
      Cache_reduce (i, "y");
      Cache_reduce (i, "z") ]
  in
  let loops = List.init n_loops per_loop |> List.concat in
  let fuses = List.init n_loop_pairs (fun k -> Fuse k) in
  let swaps = List.init n_pairs (fun k -> Swap k) in
  loops @ fuses @ swaps
