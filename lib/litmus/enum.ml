(** Bounded exhaustive enumeration of litmus skeletons.

    Enumerates every program over {!alphabet} with statement-node count
    [<= stmts] and loop-nesting depth [<= depth], lazily and in a fixed
    deterministic order (leaves in alphabet order, then structured nodes
    shallowest-first within the budget).  Statement {e order} is
    semantic, so permutations are distinct programs here; the harness's
    canonical-hash dedup collapses whatever lowers alpha-equivalently.

    The alphabet is curated, TransForm-style: one representative per
    access shape the schedule transformations and verifiers actually
    branch on — regular, strided, non-injective, indirect in both
    positions, 2-D, min/max reduction, locals, and a
    deliberately-conflicting constant subscript.  Growing the alphabet
    grows coverage but multiplies the space; every entry must earn its
    factor. *)

open Prog

(** Leaf statements, one per interesting access shape. *)
let alphabet : leaf list =
  [ L_st_y (Ix_it, V_x Ix_it);        (* regular copy *)
    L_rd_y (Ix_it, V_x Ix_it);        (* regular reduction *)
    L_st_y (Ix_it2, V_c);             (* non-unit stride *)
    L_rd_y (Ix_div, V_x Ix_it);       (* non-injective target: i/2 aliases *)
    L_st_y (Ix_ind, V_c);             (* indirect store y[idx[i]] *)
    L_rd_y (Ix_it, V_xi);             (* indirect load x[idx[i]] *)
    L_rd_y (Ix_it, V_prod);           (* multi-tensor product reduction:
                                         the shape blockization keys on *)
    L_st_z (Ix_it, Ix_outer, V_m (Ix_it, Ix_outer));  (* 2-D *)
    L_rd_z_max (Ix_it, Ix_outer, V_sum);              (* max-reduce *)
    L_st_t (Ix_it, V_x Ix_it);        (* local write *)
    L_rd_y (Ix_it, V_t Ix_it);        (* local read *)
    L_st_y (Ix_c 0, V_x Ix_it) ]      (* every iteration hits y[0] *)

(** Structured-node shapes.  Loop length 4 keeps split factors 2 and 3
    interesting (even/uneven); the dynamic bound reads [idx[0]]. *)
type shape =
  | Sh_loop of bool * bool  (* par, dyn *)
  | Sh_if
  | Sh_local

let shapes : shape list =
  [ Sh_loop (false, false);
    Sh_loop (true, false);
    Sh_loop (false, true);
    Sh_if;
    Sh_local ]

let loop_len = 4
let local_dim = 3

let build shape body =
  match shape with
  | Sh_loop (par, dyn) -> Loop { len = loop_len; par; dyn; body }
  | Sh_if -> If { parity = true; body }
  | Sh_local -> Local { dim = local_dim; body }

(* Every node with size <= budget and loop-depth <= depth, paired with
   its exact size; then every node list under the same bounds.  Mutually
   recursive, lazy, terminating because the budget strictly shrinks. *)
let rec gen_node ~depth ~budget () : (node * int) Seq.node =
  if budget < 1 then Seq.Nil
  else
    let leaves = Seq.map (fun l -> (Leaf l, 1)) (List.to_seq alphabet) in
    let structured =
      if budget < 2 then Seq.empty
      else
        Seq.concat_map
          (fun shape ->
            let sub_depth =
              match shape with Sh_loop _ -> depth - 1 | _ -> depth
            in
            if sub_depth < 0 then Seq.empty
            else
              Seq.filter_map
                (fun (body, sz) ->
                  if body = [] then None else Some (build shape body, sz + 1))
                (gen_list ~depth:sub_depth ~budget:(budget - 1)))
          (List.to_seq shapes)
    in
    Seq.append leaves structured ()

and gen_list ~depth ~budget () : (Prog.t * int) Seq.node =
  Seq.cons ([], 0)
    (Seq.concat_map
       (fun (n, sz) ->
         Seq.map
           (fun (rest, rsz) -> (n :: rest, sz + rsz))
           (gen_list ~depth ~budget:(budget - sz)))
       (gen_node ~depth ~budget))
    ()

(** All non-empty skeletons with at most [stmts] statement nodes and
    loop depth at most [depth], in deterministic order. *)
let programs ~depth ~stmts : Prog.t Seq.t =
  Seq.filter_map
    (fun (p, _) -> if p = [] then None else Some p)
    (gen_list ~depth ~budget:stmts)

(** Space size without building the programs (for progress totals). *)
let count ~depth ~stmts : int =
  Seq.fold_left (fun a _ -> a + 1) 0 (programs ~depth ~stmts)
