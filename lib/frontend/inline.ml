(** Partial evaluation of dimension-free programs (Sections 3.3 / 4.1,
    Figs. 6 and 9).

    IR functions may take [Any_dim] parameters and branch on the
    compile-time meta-expressions [Meta_ndim p] / [Meta_shape (p, k)].
    [Call] statements pass tensor views — a caller tensor plus a picked
    index prefix, as in [add(A[i], B[i], C[i])].  Inlining substitutes the
    views, resolves the meta-expressions against the (now known) actual
    shapes, folds the metadata branches, and repeats on the result, so a
    finite recursion over [ndim] expands into a nested loop exactly as in
    Fig. 9. *)

open Ft_ir

exception Inline_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Inline_error s)) fmt

type table = (string, Stmt.func) Hashtbl.t

let table_of_list fns : table =
  let t = Hashtbl.create 8 in
  List.iter (fun (f : Stmt.func) -> Hashtbl.replace t f.Stmt.fn_name f) fns;
  t

(* A view binding for a tensor parameter. *)
type binding = {
  b_actual : string;      (* caller tensor *)
  b_prefix : Expr.t list; (* picked leading indices *)
  b_shape : Expr.t list;  (* shape of the *view* (actual minus prefix) *)
}

(* Substitute one callee body: tensor params via [tenv], scalar params via
   [senv], and resolve Meta_* against view shapes.  Local names and
   iterators are freshened so repeated expansions never collide. *)
let substitute (tenv : (string * binding) list) (senv : (string * Expr.t) list)
    (body : Stmt.t) : Stmt.t =
  let rename = Hashtbl.create 8 in
  let local name =
    match Hashtbl.find_opt rename name with
    | Some n -> n
    | None ->
      let n = Names.fresh name in
      Hashtbl.add rename name n;
      n
  in
  let fix_expr e =
    Expr.map
      (function
        | Expr.Var x as e -> (
          match List.assoc_opt x senv with
          | Some v -> v
          | None -> (
            match Hashtbl.find_opt rename x with
            | Some n -> Expr.var n
            | None -> e))
        | Expr.Load { l_var; l_indices } as e -> (
          match List.assoc_opt l_var tenv with
          | Some b ->
            Expr.Load
              { l_var = b.b_actual; l_indices = b.b_prefix @ l_indices }
          | None -> (
            match Hashtbl.find_opt rename l_var with
            | Some n -> Expr.Load { l_var = n; l_indices }
            | None -> e))
        | Expr.Meta_ndim p -> (
          match List.assoc_opt p tenv with
          | Some b -> Expr.int (List.length b.b_shape)
          | None -> err "Meta_ndim %s: unknown parameter" p)
        | Expr.Meta_shape (p, k) -> (
          match List.assoc_opt p tenv with
          | Some b -> (
            match List.nth_opt b.b_shape k with
            | Some e -> e
            | None -> err "Meta_shape (%s, %d): rank too small" p k)
          | None -> err "Meta_shape %s: unknown parameter" p)
        | e -> e)
      e
  in
  let fix_target name indices =
    match List.assoc_opt name tenv with
    | Some b -> (b.b_actual, b.b_prefix @ indices)
    | None -> (
      match Hashtbl.find_opt rename name with
      | Some n -> (n, indices)
      | None -> (name, indices))
  in
  let rec go (s : Stmt.t) : Stmt.t =
    match s.Stmt.node with
    | Stmt.Store st ->
      let indices = List.map fix_expr st.Stmt.s_indices in
      let name, indices = fix_target st.Stmt.s_var indices in
      Stmt.with_node s
        (Stmt.Store
           { s_var = name; s_indices = indices;
             s_value = fix_expr st.Stmt.s_value })
    | Stmt.Reduce_to r ->
      let indices = List.map fix_expr r.Stmt.r_indices in
      let name, indices = fix_target r.Stmt.r_var indices in
      Stmt.with_node s
        (Stmt.Reduce_to
           { r with r_var = name; r_indices = indices;
             r_value = fix_expr r.Stmt.r_value })
    | Stmt.Var_def d ->
      (* declare the local rename before walking the body *)
      let name = local d.Stmt.d_name in
      Stmt.with_node s
        (Stmt.Var_def
           { d with
             d_name = name;
             d_shape = List.map fix_expr d.Stmt.d_shape;
             d_body = go d.Stmt.d_body })
    | Stmt.For f ->
      let iter = local f.Stmt.f_iter in
      Stmt.with_node s
        (Stmt.For
           { f with
             f_iter = iter;
             f_begin = fix_expr f.Stmt.f_begin;
             f_end = fix_expr f.Stmt.f_end;
             f_step = fix_expr f.Stmt.f_step;
             f_body = go f.Stmt.f_body })
    | Stmt.If i -> (
      (* Fold metadata conditionals *before* walking the branches: the
         dead branch may index past the (now known) rank — as in the base
         case of Fig. 6(b), where the else-branch reads A.shape(0) of a
         0-D view — and must never be substituted. *)
      match fix_expr i.Stmt.i_cond with
      | Expr.Bool_const true -> go i.Stmt.i_then
      | Expr.Bool_const false -> (
        match i.Stmt.i_else with
        | Some e -> go e
        | None -> Stmt.nop ())
      | cond ->
        Stmt.with_node s
          (Stmt.If
             { i_cond = cond;
               i_then = go i.Stmt.i_then;
               i_else = Option.map go i.Stmt.i_else }))
    | Stmt.Assert_stmt (c, b) ->
      Stmt.with_node s (Stmt.Assert_stmt (fix_expr c, go b))
    | Stmt.Seq ss -> Stmt.with_node s (Stmt.Seq (List.map go ss))
    | Stmt.Eval e -> Stmt.with_node s (Stmt.Eval (fix_expr e))
    | Stmt.Nop -> s
    | Stmt.Lib_call { lib; body } ->
      Stmt.with_node s (Stmt.Lib_call { lib; body = go body })
    | Stmt.Microkernel { mk; body } ->
      Stmt.with_node s (Stmt.Microkernel { mk; body = go body })
    | Stmt.Call { callee; args } ->
      let fix_arg = function
        | Stmt.Tensor_arg { param; actual; prefix } -> (
          let prefix = List.map fix_expr prefix in
          match List.assoc_opt actual tenv with
          | Some b ->
            Stmt.Tensor_arg
              { param; actual = b.b_actual; prefix = b.b_prefix @ prefix }
          | None -> (
            match Hashtbl.find_opt rename actual with
            | Some n -> Stmt.Tensor_arg { param; actual = n; prefix }
            | None -> Stmt.Tensor_arg { param; actual; prefix }))
        | Stmt.Scalar_arg { param; value } ->
          Stmt.Scalar_arg { param; value = fix_expr value }
      in
      Stmt.with_node s (Stmt.Call { callee; args = List.map fix_arg args })
  in
  go body

(* Shape environment for the caller: tensor name -> shape exprs. *)
let rec expand (tbl : table) (shapes : (string * Expr.t list) list)
    ~fuel (s : Stmt.t) : Stmt.t =
  if fuel <= 0 then err "partial evaluation did not terminate (recursion on a non-decreasing dimension?)";
  match s.Stmt.node with
  | Stmt.Call { callee; args } ->
    let fn =
      match Hashtbl.find_opt tbl callee with
      | Some f -> f
      | None -> err "call to unknown function %s" callee
    in
    let tenv, senv =
      List.fold_left
        (fun (tenv, senv) arg ->
          match arg with
          | Stmt.Tensor_arg { param; actual; prefix } ->
            let full_shape =
              match List.assoc_opt actual shapes with
              | Some sh -> sh
              | None -> err "unknown shape for tensor %s" actual
            in
            let k = List.length prefix in
            if k > List.length full_shape then
              err "index prefix deeper than tensor %s" actual;
            let b_shape = List.filteri (fun i _ -> i >= k) full_shape in
            ((param, { b_actual = actual; b_prefix = prefix; b_shape })
             :: tenv, senv)
          | Stmt.Scalar_arg { param; value } -> (tenv, (param, value) :: senv))
        ([], []) args
    in
    (* check arity against declared params *)
    List.iter
      (fun (p : Stmt.param) ->
        if
          (not (List.mem_assoc p.Stmt.p_name tenv))
          && not (List.mem_assoc p.Stmt.p_name senv)
        then err "call to %s: missing argument %s" callee p.Stmt.p_name)
      fn.Stmt.fn_params;
    let body = substitute tenv senv fn.Stmt.fn_body in
    (* fold metadata branches before recursing: this is what bounds the
       recursion (ndim strictly decreases in well-formed programs) *)
    let body = Ft_passes.Simplify.run_stmt body in
    expand tbl shapes ~fuel:(fuel - 1) body
  | Stmt.Var_def d ->
    let shapes = (d.Stmt.d_name, d.Stmt.d_shape) :: shapes in
    Stmt.with_node s
      (Stmt.Var_def { d with d_body = expand tbl shapes ~fuel d.Stmt.d_body })
  | _ ->
    let cs = List.map (expand tbl shapes ~fuel) (Stmt.children s) in
    Stmt.with_children s cs

(** Fully inline all [Call]s in [fn], given the callable [table].  Shapes
    of the caller's parameters seed the shape environment. *)
let run ?(fuel = 64) (tbl : table) (fn : Stmt.func) : Stmt.func =
  let shapes =
    List.filter_map
      (fun (p : Stmt.param) ->
        match p.Stmt.p_shape with
        | Stmt.Fixed es -> Some (p.Stmt.p_name, es)
        | Stmt.Any_dim -> None)
      fn.Stmt.fn_params
  in
  let body = expand tbl shapes ~fuel fn.Stmt.fn_body in
  let body = Ft_passes.Simplify.run_stmt body in
  (* no Meta expression may survive *)
  Stmt.iter_exprs
    (fun e ->
      Expr.iter
        (function
          | Expr.Meta_ndim p | Expr.Meta_shape (p, _) ->
            err "meta expression on %s not eliminated" p
          | _ -> ())
        e)
    body;
  { fn with Stmt.fn_body = body }
