(** Statement-level simplification (the "further optimizations" of
    Section 4.3): constant folding, branch elimination using the symbolic
    bound analysis, degenerate-loop removal, and sequence flattening.

    Run after inlining and after every schedule application; it is
    idempotent and semantics-preserving. *)

open Ft_ir

(* Fold every expression bottom-up through the smart constructors, then
   try to prove conditions under the iterator-range context. *)
let rec simp (ctx : Bounds.ctx) (s : Stmt.t) : Stmt.t =
  match s.node with
  | Stmt.Nop | Stmt.Store _ | Stmt.Reduce_to _ | Stmt.Eval _ | Stmt.Call _ ->
    Stmt.map_exprs (Expr.map Fun.id) s
  | Stmt.Seq ss -> Stmt.seq ?label:s.label (List.map (simp ctx) ss)
  | Stmt.Var_def d ->
    let d_shape = List.map (Expr.map Fun.id) d.d_shape in
    Stmt.with_node s (Stmt.Var_def { d with d_shape; d_body = simp ctx d.d_body })
  | Stmt.Assert_stmt (c, b) -> (
    let c = Expr.map Fun.id c in
    match Bounds.prove ctx c with
    | Some true -> simp ctx b
    | _ -> Stmt.with_node s (Stmt.Assert_stmt (c, simp ctx b)))
  | Stmt.Lib_call l ->
    Stmt.with_node s (Stmt.Lib_call { l with body = simp ctx l.body })
  | Stmt.Microkernel m ->
    Stmt.with_node s (Stmt.Microkernel { m with body = simp ctx m.body })
  | Stmt.If i -> (
    let cond = Expr.map Fun.id i.i_cond in
    match Bounds.prove ctx cond with
    | Some true -> simp ctx i.i_then
    | Some false -> (
      match i.i_else with
      | Some e -> simp ctx e
      | None -> Stmt.nop ())
    | None ->
      let i_then = simp ctx i.i_then in
      let i_else = Option.map (simp ctx) i.i_else in
      (* prune empty branches *)
      let is_nop st = match st.Stmt.node with Stmt.Nop -> true | _ -> false in
      let i_else =
        match i_else with
        | Some e when is_nop e -> None
        | e -> e
      in
      if is_nop i_then && i_else = None then Stmt.nop ()
      else Stmt.with_node s (Stmt.If { i_cond = cond; i_then; i_else }))
  | Stmt.For f -> (
    let f_begin = Expr.map Fun.id f.f_begin in
    let f_end = Expr.map Fun.id f.f_end in
    let f_step = Expr.map Fun.id f.f_step in
    (* trip count when constant *)
    let trip =
      match f_begin, f_end, f_step with
      | Expr.Int_const b, Expr.Int_const e, Expr.Int_const st when st > 0 ->
        Some (max 0 ((e - b + st - 1) / st))
      | _ -> (
        (* provably empty loop? *)
        match Bounds.prove ctx (Expr.le f_end f_begin) with
        | Some true -> Some 0
        | _ -> None)
    in
    match trip with
    | Some 0 -> Stmt.nop ()
    | Some 1 when f.f_property.parallel = None ->
      simp ctx (Stmt.subst_var f.f_iter f_begin f.f_body)
    | _ ->
      let ctx' =
        Bounds.bind f.f_iter
          { Bounds.lo = f_begin; hi = Expr.sub f_end (Expr.int 1) }
          ctx
      in
      let body = simp ctx' f.f_body in
      (match body.Stmt.node with
       | Stmt.Nop -> Stmt.nop ()
       | _ ->
         Stmt.with_node s
           (Stmt.For { f with f_begin; f_end; f_step; f_body = body })))

let run_stmt ?(ctx = Bounds.empty) s = simp ctx s

let run (fn : Stmt.func) = { fn with fn_body = run_stmt fn.fn_body }
