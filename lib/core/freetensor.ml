(** FreeTensor: a free-form DSL with holistic optimizations for irregular
    tensor programs — the public API of this reproduction.

    Write a program with {!Dsl} (plus {!Libop} operators), optionally
    differentiate it with {!Grad}, schedule it by hand with {!Schedule} or
    automatically with {!Auto}, then run it with {!Interp} (reference
    semantics), estimate its performance with {!Costmodel} (abstract
    machine), or emit OpenMP C / CUDA source with {!Codegen}.
    {!Compile} bundles the common pipeline. *)

module Types = Ft_ir.Types
module Expr = Ft_ir.Expr
module Stmt = Ft_ir.Stmt
module Printer = Ft_ir.Printer
module Linear = Ft_ir.Linear
module Bounds = Ft_ir.Bounds

module Polyhedron = Ft_presburger.Polyhedron
module Iset = Ft_presburger.Iset
module Imap = Ft_presburger.Imap

module Access = Ft_dep.Access
module Dep = Ft_dep.Dep
module Race = Ft_analyze.Race
module Boundcheck = Ft_analyze.Boundcheck
module Diag = Ft_ir.Diag

module Simplify = Ft_passes.Simplify
module Dead_code = Ft_passes.Dead_code

module Schedule = Ft_sched.Schedule
module Auto = Ft_auto.Auto

module Dsl = Ft_frontend.Dsl
module Inline = Ft_frontend.Inline
module Libop = Ft_libop.Libop

module Derivative = Ft_ad.Derivative
module Grad = Ft_ad.Grad

module Tensor = Ft_runtime.Tensor
module Machine = Ft_machine.Machine
module Profile = Ft_profile.Profile

module Lower = Ft_lower.Pass
module Blockize = Ft_lower.Blockize

module Interp = Ft_backend.Interp
module Compile_exec = Ft_backend.Compile_exec
module Exec_par = Ft_backend.Exec_par
module Supervisor = Ft_backend.Supervisor
module Costmodel = Ft_backend.Costmodel
module Codegen = Ft_backend.Codegen

module Canon = Ft_ir.Canon
module Serve = Ft_serve.Serve
module Snapshot = Ft_serve.Snapshot
module Breaker = Ft_serve.Breaker

(** The end-to-end compilation pipeline of Section 4: cleanup passes,
    rule-based auto-scheduling for a target device, backend code
    generation, and performance estimation on the abstract machine. *)
module Compile = struct
  type compiled = {
    c_fn : Stmt.func;      (** the scheduled function *)
    c_device : Types.device;
    c_source : string;     (** generated OpenMP C or CUDA source *)
    c_compile_time : float; (** seconds spent auto-transforming *)
  }

  (** [build ~device fn] runs simplification, dead-code elimination and
      the six auto-scheduling passes, then generates native source for
      [device].  Set [auto:false] to keep a hand-applied schedule. *)
  let build ?(auto = true) ~(device : Types.device) (fn : Stmt.func) :
      compiled =
    let t0 = Unix.gettimeofday () in
    let fn = Simplify.run fn in
    let fn = Dead_code.run fn in
    let fn = if auto then Auto.run ~device fn else fn in
    let fn = Simplify.run fn in
    let source =
      match device with
      | Types.Cpu -> Codegen.c_of_func fn
      | Types.Gpu -> Codegen.cuda_of_func fn
    in
    let c_compile_time = Unix.gettimeofday () -. t0 in
    { c_fn = fn; c_device = device; c_source = source; c_compile_time }

  (** Run the compiled function on the reference interpreter. *)
  let run ?(sizes = []) (c : compiled) args =
    Interp.run_func ~sizes c.c_fn args

  (** Estimate one execution on the abstract machine. *)
  let estimate ?(sizes = []) ?unknown_extent (c : compiled) :
      Machine.metrics =
    Costmodel.estimate ~sizes ?unknown_extent ~device:c.c_device c.c_fn
end
