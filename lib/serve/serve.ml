(* Multi-tenant serving layer.  See serve.mli for the design; the short
   version: LRU of prepared Supervisor artifacts keyed on
   (canonical hash, size binding, policy knobs, lowering gate), shape
   specialization on miss, per-group shared budget scopes, and
   CONCURRENT batch dispatch: the master tags/orders/sheds, then
   key-groups execute as independent tasks across the domain pool, each
   request under its own per-request run context and budget (same-key
   members stay sequential within their group — a compiled artifact's
   closures are not reentrant).  Overload resilience on top: EDF
   ordering with deadline-aware load shedding, bounded-queue admission
   with watermark hysteresis, per-key circuit breakers, and crash-safe
   cache-metadata snapshots.

   Thread-safety: the server's shared mutable state (stats, LRU, seen
   set, estimate tables) is guarded by [t.mu]; the canonical-hash memo
   by its own [t.hash_mu]; the breaker carries an internal mutex.
   Artifact execution — the long part — runs outside every lock. *)

open Ft_ir
open Ft_runtime
module Machine = Ft_machine.Machine
module Supervisor = Ft_backend.Supervisor
module Compile_exec = Ft_backend.Compile_exec
module Exec_par = Ft_backend.Exec_par

type stats = {
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_compiles : int;
  mutable st_evictions : int;
  mutable st_invalidations : int;
  mutable st_served_clean : int;
  mutable st_retried : int;
  mutable st_degraded : int;
  mutable st_failed : int;
  mutable st_rejected : int;
  mutable st_shed : int;
  mutable st_guard_checks : int;
}

let stats_make () =
  { st_hits = 0; st_misses = 0; st_compiles = 0; st_evictions = 0;
    st_invalidations = 0; st_served_clean = 0; st_retried = 0;
    st_degraded = 0; st_failed = 0; st_rejected = 0; st_shed = 0;
    st_guard_checks = 0 }

let stats_copy s = { s with st_hits = s.st_hits }

type entry = {
  e_sv : Supervisor.t;
  e_hash : string;                 (* canonical hash of the unspecialized fn *)
  e_sizes : (string * int) list;   (* size binding the artifact was built for *)
}

type overload_policy = {
  ov_queue_high : int;
  ov_queue_low : int;
  ov_breaker_k : int;
  ov_breaker_cooldown : int;
  ov_deadline_slack : float;
  ov_ewma_warmup : int;
      (* wall-clock shedding trusts the EWMA service predictor only
         after this many observations of a key; below it, the
         cost-model estimate is used instead *)
}

let default_overload =
  { ov_queue_high = 0;
    ov_queue_low = 0;
    ov_breaker_k = 3;
    ov_breaker_cooldown = 8;
    ov_deadline_slack = 8.0;
    ov_ewma_warmup = 5 }

type t = {
  policy : Supervisor.policy;
  ov : overload_policy;
  cache : entry Lru.t;
  st : stats;
  seen : (string, unit) Hashtbl.t;  (* every key ever, beyond the LRU *)
  batches : (int, int) Hashtbl.t;   (* batch size -> count *)
  breaker : Breaker.t;
  est : (string, float) Hashtbl.t;      (* key -> modeled service seconds *)
  wall_est : (string, float) Hashtbl.t; (* key -> EWMA of wall service *)
  wall_obs : (string, int) Hashtbl.t;   (* key -> EWMA observation count *)
  (* Guards every shared mutable table above plus the stats record:
     concurrent batch members mutate them from pool domains.  Artifact
     execution never runs under it. *)
  mu : Mutex.t;
  (* Single-entry canonical-hash memo, keyed by physical equality: a
     soak serves the same function value thousands of times and must not
     re-print + re-hash the AST per request.  Own lock so key hashing
     (needed even on reject paths) never contends with [mu]. *)
  hash_mu : Mutex.t;
  mutable hash_memo : (Stmt.func * string) option;
  (* Dispatch groups one at a time on the master instead of fanning
     them across the pool.  Everything else — pool size, chunking,
     per-request contexts and budgets — is unchanged, so a sequential
     server is the isolation verifier's baseline: concurrency is the
     only variable. *)
  seq_dispatch : bool;
}

let create ?(capacity = 16) ?(overload = default_overload)
    ?(sequential_dispatch = false) ~policy () =
  if overload.ov_queue_high > 0 && overload.ov_queue_low >= overload.ov_queue_high
  then invalid_arg "Serve.create: queue low watermark must be below high";
  (* A breaker needs a fallback chain to route to; with a single-backend
     policy there is nothing below the primary, so it stays disabled. *)
  let k =
    if List.length policy.Supervisor.backends > 1 then overload.ov_breaker_k
    else 0
  in
  { policy;
    ov = overload;
    cache = Lru.create ~capacity;
    st = stats_make ();
    seen = Hashtbl.create 64;
    batches = Hashtbl.create 8;
    breaker = Breaker.create ~k ~cooldown:overload.ov_breaker_cooldown;
    est = Hashtbl.create 16;
    wall_est = Hashtbl.create 16;
    wall_obs = Hashtbl.create 16;
    mu = Mutex.create ();
    hash_mu = Mutex.create ();
    hash_memo = None;
    seq_dispatch = sequential_dispatch }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats t = t.st
let distinct_keys t = Hashtbl.length t.seen
let cache_length t = Lru.length t.cache
let breaker_trips t = Breaker.trips t.breaker
let breaker_recoveries t = Breaker.recoveries t.breaker

let canonical_hash t (fn : Stmt.func) =
  Mutex.lock t.hash_mu;
  match t.hash_memo with
  | Some (fn', h) when fn' == fn ->
    Mutex.unlock t.hash_mu;
    h
  | _ ->
    Mutex.unlock t.hash_mu;
    (* Hash outside the lock — it walks the whole AST and concurrent
       lookups for different functions must not serialize on it. *)
    let h = Canon.canonical_hash fn in
    Mutex.lock t.hash_mu;
    t.hash_memo <- Some (fn, h);
    Mutex.unlock t.hash_mu;
    h

let sizes_str sizes =
  List.sort (fun (a, _) (b, _) -> compare a b) sizes
  |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
  |> String.concat ","

let chain_str t =
  String.concat ">" (List.map Supervisor.backend_name t.policy.Supervisor.backends)

(* Everything that affects the compiled closures goes in the key; the
   supervisor always compiles with hooks, so that flag is fixed. *)
let key_of t ?(sizes = []) (fn : Stmt.func) =
  Printf.sprintf "%s;sizes=%s;chain=%s;retries=%d;guard=%b;lower=%b"
    (canonical_hash t fn) (sizes_str sizes) (chain_str t)
    t.policy.Supervisor.retries t.policy.Supervisor.guard
    (Ft_lower.Pass.enabled ())

let breaker_state t key = Breaker.state t.breaker key

(* Shape specialization: substitute the size binding into the body and
   the declared parameter shapes, then simplify — loop bounds and shape
   arithmetic fold to constants, so the compiled artifact gets constant
   strides and the strength-reduced fast path.  The specialized function
   runs with an empty size binding. *)
let specialize (fn : Stmt.func) (sizes : (string * int) list) : Stmt.func =
  if sizes = [] then fn
  else begin
    let env n = Option.map Expr.int (List.assoc_opt n sizes) in
    let subst = Expr.subst_var env in
    let params =
      List.map
        (fun (p : Stmt.param) ->
          match p.Stmt.p_shape with
          | Stmt.Any_dim -> p
          | Stmt.Fixed es ->
            { p with Stmt.p_shape = Stmt.Fixed (List.map subst es) })
        fn.Stmt.fn_params
    in
    Ft_passes.Simplify.run
      { fn with
        Stmt.fn_params = params;
        Stmt.fn_body = Stmt.map_exprs subst fn.Stmt.fn_body }
  end

(* Modeled service seconds for a key's specialized program, via the
   supervisor's deadline helper at slack 1 (= raw modeled time).  The
   cost model walks the whole AST, so memoize per key. *)
let model_estimate t key (fn : Stmt.func) sizes =
  match locked t (fun () -> Hashtbl.find_opt t.est key) with
  | Some e -> e
  | None ->
    let e =
      match
        Supervisor.deadline_of_estimate ~slack:1.0 ~device:Types.Cpu
          (specialize fn sizes)
      with
      | Machine.Seconds s when s > 0.0 -> s
      | _ -> 0.0
      | exception _ -> 0.0
    in
    locked t (fun () -> Hashtbl.replace t.est key e);
    e

(* Default relative deadline: [ov_deadline_slack] times the modeled
   service time — [Supervisor.deadline_of_estimate] semantics keyed to
   the serving cache.  Infinite when the model has no estimate. *)
let default_deadline t key (fn : Stmt.func) sizes =
  let e = model_estimate t key fn sizes in
  if e > 0.0 then t.ov.ov_deadline_slack *. e else Float.infinity

let modeled_service t ?(sizes = []) (fn : Stmt.func) =
  model_estimate t (key_of t ~sizes fn) fn sizes

(* Wall-clock service prediction with EWMA warmup: shed on the per-key
   EWMA only once it has at least [ov_ewma_warmup] observations; before
   that fall back to the caller's cost-model estimate, so one or two
   cold-cache outliers can't start shedding a key the server barely
   knows. *)
let predicted_service t key ~est =
  locked t (fun () ->
      let obs = Option.value ~default:0 (Hashtbl.find_opt t.wall_obs key) in
      if obs >= t.ov.ov_ewma_warmup then
        Option.value ~default:est (Hashtbl.find_opt t.wall_est key)
      else est)

(* Record one observed wall service time for [key]: EWMA update plus the
   observation count that gates {!predicted_service}. *)
let note_service t key wall =
  locked t (fun () ->
      let prev =
        Option.value ~default:wall (Hashtbl.find_opt t.wall_est key)
      in
      Hashtbl.replace t.wall_est key ((0.7 *. prev) +. (0.3 *. wall));
      Hashtbl.replace t.wall_obs key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.wall_obs key)))

type request = {
  rq_id : int;
  rq_fn : Stmt.func;
  rq_sizes : (string * int) list;
  rq_args : (string * Tensor.t) list;
  rq_plan : Machine.Fault_plan.t option;
  rq_deadline : float option;
}

let request ?(sizes = []) ?plan ?deadline ~id fn args =
  { rq_id = id; rq_fn = fn; rq_sizes = sizes; rq_args = args;
    rq_plan = plan; rq_deadline = deadline }

type status =
  | Completed of Supervisor.outcome
  | Rejected of Diag.t

type response = {
  rs_id : int;
  rs_key : string;
  rs_hit : bool;
  rs_guard_checks : int;
  rs_status : status;
}

let served r =
  match r.rs_status with
  | Completed o -> o.Supervisor.result <> None
  | Rejected _ -> false

let shed_response t (rq : request) key detail =
  locked t (fun () -> t.st.st_shed <- t.st.st_shed + 1);
  { rs_id = rq.rq_id; rs_key = key; rs_hit = false; rs_guard_checks = 0;
    rs_status = Rejected (Diag.overload ~fn:rq.rq_fn.Stmt.fn_name detail) }

(* Lookup-or-compile under [t.mu]: the lock also serializes compiles, so
   two concurrent first requests for one key build the artifact once.
   Compiles are rare after warmup, so holding the lock across [prepare]
   costs contention only on the cold path. *)
let lookup t (rq : request) : string * entry * bool =
  let key = key_of t ~sizes:rq.rq_sizes rq.rq_fn in
  let hash = canonical_hash t rq.rq_fn in
  locked t (fun () ->
      match Lru.find t.cache key with
      | Some e ->
        t.st.st_hits <- t.st.st_hits + 1;
        (key, e, true)
      | None ->
        t.st.st_misses <- t.st.st_misses + 1;
        t.st.st_compiles <- t.st.st_compiles + 1;
        if not (Hashtbl.mem t.seen key) then Hashtbl.add t.seen key ();
        let fn = specialize rq.rq_fn rq.rq_sizes in
        let e =
          { e_sv = Supervisor.prepare ~policy:t.policy fn;
            e_hash = hash;
            e_sizes = rq.rq_sizes }
        in
        (match Lru.add t.cache key e with
         | None -> ()
         | Some _ -> t.st.st_evictions <- t.st.st_evictions + 1);
        (key, e, false))

(* Admission control: a request whose argument footprint alone exceeds
   the memory budget can never complete on a budgeted backend — reject
   it up front instead of letting it churn through the chain. *)
let admit t (rq : request) : Diag.t option =
  match t.policy.Supervisor.mem_budget_bytes with
  | None -> None
  | Some cap ->
    let footprint =
      List.fold_left (fun a (_, x) -> a + Tensor.byte_size x) 0 rq.rq_args
    in
    if footprint <= cap then None
    else
      Some
        (Diag.make ~code:Diag.Oom ~fn:rq.rq_fn.Stmt.fn_name
           (Printf.sprintf
              "admission: request footprint %d bytes exceeds the %d-byte \
               memory budget"
              footprint cap))

let serve_one t (rq : request) : response =
  match admit t rq with
  | Some d ->
    locked t (fun () -> t.st.st_rejected <- t.st.st_rejected + 1);
    { rs_id = rq.rq_id;
      rs_key = key_of t ~sizes:rq.rq_sizes rq.rq_fn;
      rs_hit = false; rs_guard_checks = 0; rs_status = Rejected d }
  | None ->
    let key, e, hit = lookup t rq in
    (* Breaker routing: a tripped key skips the suspect primary and goes
       straight to the fallback chain — no recompile-and-fail loop. *)
    let route = Breaker.route t.breaker key in
    let skip = match route with `Fallback -> 1 | `Primary | `Probe -> 0 in
    (* Artifacts are cached and reused, so raw guard counters accumulate
       across requests; report this request's work as a snapshot delta.
       Same-key requests serialize (concurrent dispatch keeps a key's
       members in one group), so the delta is this request's alone. *)
    let snaps =
      List.map
        (fun (_, g) -> (g, Compile_exec.guard_snapshot g))
        (Supervisor.guard_stats e.e_sv)
    in
    (* The execution itself — the long part — runs outside every server
       lock, under the request's own run context and budget. *)
    let o = Supervisor.exec ?plan:rq.rq_plan ~skip e.e_sv rq.rq_args in
    let checks =
      List.fold_left
        (fun a (g, s) -> a + Compile_exec.guard_checks_since g s)
        0 snaps
    in
    locked t (fun () ->
        t.st.st_guard_checks <- t.st.st_guard_checks + checks;
        (match o.Supervisor.result with
         | None ->
           t.st.st_failed <- t.st.st_failed + 1
         | Some _ when o.Supervisor.degraded ->
           t.st.st_degraded <- t.st.st_degraded + 1
         | Some _ when o.Supervisor.retried ->
           t.st.st_retried <- t.st.st_retried + 1
         | Some _ -> t.st.st_served_clean <- t.st.st_served_clean + 1);
        let primary_ok =
          skip = 0 && o.Supervisor.result <> None && not o.Supervisor.degraded
        in
        (match route with
         | `Primary | `Probe -> Breaker.record t.breaker key ~primary_ok
         | `Fallback -> ());
        (* A demotion or fail-closed taints the artifact's primary: drop
           the entry so the next request compiles fresh instead of
           replaying a degraded closure.  But only while the breaker
           stays closed — the failure that trips it (and every
           fallback/probe under it) keeps the artifact, so fallback
           requests hit the cache and the compile count stays flat for
           the whole time the key is tripped. *)
        if (o.Supervisor.result = None || o.Supervisor.degraded)
           && (match route with `Primary -> true | `Fallback | `Probe -> false)
           && Breaker.state t.breaker key = Breaker.Closed
        then
          if Lru.mem t.cache key then begin
            Lru.remove t.cache key;
            t.st.st_invalidations <- t.st.st_invalidations + 1
          end);
    { rs_id = rq.rq_id; rs_key = key; rs_hit = hit;
      rs_guard_checks = checks; rs_status = Completed o }

let record_batch t size =
  if size > 0 then
    locked t (fun () ->
        Hashtbl.replace t.batches size
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.batches size)))

let batch_histogram t =
  List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) t.batches [])

(* One batch shares a single parent budget scope: the master installs
   it, each group job adopts it on its executing domain, and the
   supervisor chains its per-request budget under it as a child — the
   group keeps its aggregate cap while every request keeps per-request
   accounting.  [f] receives the scope to adopt (possibly [None]). *)
let in_group_scope t f =
  match t.policy.Supervisor.mem_budget_bytes with
  | Some cap when not (Tensor.budget_active ()) ->
    Tensor.with_budget ~fn:"serve-batch" cap (fun () ->
        f (Tensor.current_budget ()))
  | _ -> f (Tensor.current_budget ())

let serve t rq =
  record_batch t 1;
  serve_one t rq

(* Concurrent group dispatch: each group (same-key members, order
   preserved) becomes one task on the domain pool; independent groups
   run concurrently, each member under its own run context and
   per-request budget (chained under [parent] when a batch cap is set).
   Same-key members stay sequential inside their group task because a
   compiled artifact's closures bind shared argument cells — the
   per-key serialization is what keeps guard-check deltas and fault
   ordinals per-request exact.  Returns responses in the same nested
   order as [groups], plus each member's measured wall service time.

   Fault containment: a task exception (which [serve_one] should never
   produce — the supervisor fails closed) marks only that group's
   unfinished members as structured failures; every other group still
   runs and the pool stays reusable. *)
let run_groups t parent (groups : request list list) :
    (response * float) list list =
  let groups_a = Array.of_list (List.map Array.of_list groups) in
  let results =
    Array.map (fun g -> Array.make (Array.length g) None) groups_a
  in
  let job gi () =
    Tensor.with_adopted parent (fun () ->
        Array.iteri
          (fun mi rq ->
            let t0 = Unix.gettimeofday () in
            let r = serve_one t rq in
            let wall = Unix.gettimeofday () -. t0 in
            results.(gi).(mi) <- Some (r, wall))
          groups_a.(gi))
  in
  let exns =
    Exec_par.run_tasks
      ?max_workers:(if t.seq_dispatch then Some 1 else None)
      (Array.init (Array.length groups_a) (fun gi () -> job gi ()))
  in
  Array.to_list
    (Array.mapi
       (fun gi slots ->
         Array.to_list
           (Array.mapi
              (fun mi slot ->
                match slot with
                | Some rw -> rw
                | None ->
                  let rq = groups_a.(gi).(mi) in
                  let detail =
                    match exns.(gi) with
                    | Some e -> Printexc.to_string e
                    | None -> "group task aborted"
                  in
                  locked t (fun () ->
                      t.st.st_rejected <- t.st.st_rejected + 1);
                  ( { rs_id = rq.rq_id;
                      rs_key = key_of t ~sizes:rq.rq_sizes rq.rq_fn;
                      rs_hit = false; rs_guard_checks = 0;
                      rs_status =
                        Rejected
                          (Diag.exec_fault ~fn:rq.rq_fn.Stmt.fn_name
                             ("worker-domain exception: " ^ detail)) },
                    0.0 ))
              slots))
       results)

(* EDF + shedding batch drain.  Requests are ordered earliest-deadline-
   first (relative deadlines: explicit [rq_deadline], else the modeled
   default); among equal deadlines the old stable key-grouping applies,
   so deadline-free batches behave exactly as before.  A member whose
   deadline cannot be met given the modeled backlog ahead of it is shed
   with a structured [overload] rejection instead of served late. *)
let serve_batch t (rqs : request list) : response list =
  let tagged =
    List.map
      (fun rq ->
        let key = key_of t ~sizes:rq.rq_sizes rq.rq_fn in
        let est = model_estimate t key rq.rq_fn rq.rq_sizes in
        let dl =
          match rq.rq_deadline with
          | Some d -> d
          | None -> default_deadline t key rq.rq_fn rq.rq_sizes
        in
        (rq, key, est, dl))
      rqs
  in
  let sorted =
    List.stable_sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) tagged
  in
  (* Runs of equal deadline, in order. *)
  let runs =
    List.fold_left
      (fun acc ((_, _, _, dl) as m) ->
        match acc with
        | (dl', run) :: rest when dl' = dl -> (dl', m :: run) :: rest
        | _ -> (dl, [ m ]) :: acc)
      [] sorted
    |> List.rev_map (fun (_, run) -> List.rev run)
  in
  (* Stable grouping by cache key inside a run: first arrival decides
     group order, members keep arrival order inside their group. *)
  let group_run run =
    let order = ref [] in
    let groups = Hashtbl.create 8 in
    List.iter
      (fun ((_, key, _, _) as m) ->
        match Hashtbl.find_opt groups key with
        | Some l -> l := m :: !l
        | None ->
          Hashtbl.add groups key (ref [ m ]);
          order := key :: !order)
      run;
    List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order
    |> List.rev
  in
  let grouped = List.concat_map group_run runs in
  (* Shed pass on the master, with exactly the sequential-drain
     semantics (backlog accrues only for members that will execute, in
     group order) — decisions are therefore identical whatever the pool
     size, which the isolation verifier depends on. *)
  let backlog = ref 0.0 in
  let decided =
    List.map
      (fun members ->
        List.map
          (fun (rq, key, est, dl) ->
            if dl < Float.infinity && !backlog +. est > dl then
              `Shed
                ( rq, key,
                  Printf.sprintf
                    "deadline: %.3g s of estimated backlog ahead makes \
                     the %.3g s deadline unmeetable"
                    !backlog dl )
            else begin
              backlog := !backlog +. est;
              `Run rq
            end)
          members)
      grouped
  in
  let to_run =
    List.filter_map
      (fun members ->
        match
          List.filter_map
            (function `Run rq -> Some rq | `Shed _ -> None)
            members
        with
        | [] -> None
        | rqs -> Some rqs)
      decided
  in
  (* Execute the surviving groups concurrently across the pool, under
     one shared batch-parent budget. *)
  let executed =
    in_group_scope t (fun parent -> run_groups t parent to_run)
  in
  let remaining = ref executed in
  let responses =
    List.concat_map
      (fun members ->
        let exec_rs =
          if List.exists (function `Run _ -> true | `Shed _ -> false) members
          then (
            match !remaining with
            | g :: rest ->
              remaining := rest;
              ref (List.map fst g)
            | [] -> ref [])
          else ref []
        in
        let out =
          List.map
            (function
              | `Shed (rq, key, detail) -> shed_response t rq key detail
              | `Run _ -> (
                match !exec_rs with
                | r :: rest ->
                  exec_rs := rest;
                  r
                | [] -> assert false))
            members
        in
        let served_n =
          List.length
            (List.filter
               (fun r ->
                 match r.rs_status with
                 | Rejected d -> d.Diag.dg_code <> Diag.Overload
                 | Completed _ -> true)
               out)
        in
        record_batch t served_n;
        out)
      decided
  in
  (* Back to request order. *)
  let by_id = Hashtbl.create (List.length responses) in
  List.iter (fun r -> Hashtbl.replace by_id r.rs_id r) responses;
  List.map (fun rq -> Hashtbl.find by_id rq.rq_id) rqs

(* ------------------------------------------------------------------ *)
(* Cache persistence *)

type warm_report = {
  ws_present : bool;
  ws_corrupt : string option;
  ws_records : int;
  ws_loaded : int;
  ws_skipped : int;
}

let snapshot_record t (e : entry) =
  String.concat "\t"
    [ e.e_hash;
      sizes_str e.e_sizes;
      chain_str t;
      string_of_int t.policy.Supervisor.retries;
      string_of_bool t.policy.Supervisor.guard;
      string_of_bool (Ft_lower.Pass.enabled ()) ]

let save_snapshot t ~path =
  (* LRU-first order: re-adding on load then restores recency. *)
  let records =
    List.rev_map (fun (_, e) -> snapshot_record t e) (Lru.to_list t.cache)
  in
  Snapshot.write ~path records;
  List.length records

let parse_sizes s =
  if s = "" then Some []
  else begin
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | p :: rest ->
        (match String.index_opt p '=' with
         | None -> None
         | Some i ->
           (match
              int_of_string_opt
                (String.sub p (i + 1) (String.length p - i - 1))
            with
            | None -> None
            | Some v -> go ((String.sub p 0 i, v) :: acc) rest))
    in
    go [] (String.split_on_char ',' s)
  end

let load_snapshot t ~path ~resolve =
  match Snapshot.read ~path with
  | Snapshot.Absent ->
    { ws_present = false; ws_corrupt = None; ws_records = 0;
      ws_loaded = 0; ws_skipped = 0 }
  | Snapshot.Corrupt reason ->
    { ws_present = true; ws_corrupt = Some reason; ws_records = 0;
      ws_loaded = 0; ws_skipped = 0 }
  | Snapshot.Loaded records ->
    let loaded = ref 0 and skipped = ref 0 in
    let warm hash sizes fn =
      let key = key_of t ~sizes fn in
      if Lru.mem t.cache key then incr skipped
      else begin
        match Supervisor.prepare ~policy:t.policy (specialize fn sizes) with
        | exception _ -> incr skipped
        | sv ->
          (* A warm-start re-preparation is a compile but not a miss: no
             request asked for this key yet. *)
          t.st.st_compiles <- t.st.st_compiles + 1;
          (match
             Lru.add t.cache key { e_sv = sv; e_hash = hash; e_sizes = sizes }
           with
           | None -> ()
           | Some _ -> t.st.st_evictions <- t.st.st_evictions + 1);
          if not (Hashtbl.mem t.seen key) then Hashtbl.add t.seen key ();
          incr loaded
      end
    in
    List.iter
      (fun r ->
        match String.split_on_char '\t' r with
        | [ hash; sizes_s; chain; retries_s; guard_s; lower_s ] ->
          let policy_ok =
            chain = chain_str t
            && retries_s = string_of_int t.policy.Supervisor.retries
            && guard_s = string_of_bool t.policy.Supervisor.guard
            && lower_s = string_of_bool (Ft_lower.Pass.enabled ())
          in
          if not policy_ok then incr skipped
          else begin
            match resolve hash with
            | Some fn when canonical_hash t fn = hash ->
              (match parse_sizes sizes_s with
               | Some sizes -> warm hash sizes fn
               | None -> incr skipped)
            | Some _ | None -> incr skipped
          end
        | _ -> incr skipped)
      records;
    { ws_present = true; ws_corrupt = None;
      ws_records = List.length records;
      ws_loaded = !loaded; ws_skipped = !skipped }

let warm_report_to_string w =
  if not w.ws_present then "snapshot: absent (cold start)"
  else
    match w.ws_corrupt with
    | Some reason ->
      Printf.sprintf "snapshot: CORRUPT (%s) — rebuilding cold" reason
    | None ->
      Printf.sprintf
        "snapshot: %d record(s), %d artifact(s) re-prepared, %d skipped"
        w.ws_records w.ws_loaded w.ws_skipped

(* ------------------------------------------------------------------ *)
(* Soak driver *)

type soak_config = {
  so_seed : int;
  so_requests : int;
  so_rate : float;
  so_batch : int;
  so_phases : (float * float) list;
  so_virtual : bool;
}

let soak_cfg ?(phases = []) ?(virtual_time = false) ~seed ~requests ~rate
    ~batch () =
  { so_seed = seed; so_requests = requests; so_rate = rate;
    so_batch = batch; so_phases = phases; so_virtual = virtual_time }

type soak_report = {
  sk_requests : int;
  sk_served_clean : int;
  sk_retried : int;
  sk_degraded : int;
  sk_failed : int;
  sk_rejected : int;
  sk_shed_admission : int;
  sk_shed_deadline : int;
  sk_deadline_miss : int;
  sk_makespan_s : float;
  sk_throughput_rps : float;
  sk_p50_ms : float;
  sk_p99_ms : float;
  sk_hit_rate : float;
  sk_warm_rate : float;
  sk_compiles : int;
  sk_distinct_keys : int;
  sk_recompiles_after_warmup : int;
  sk_evictions : int;
  sk_invalidations : int;
  sk_guard_checks : int;
  sk_queue_peak : int;
  sk_breaker_trips : int;
  sk_breaker_recoveries : int;
  sk_batch_hist : (int * int) list;
}

(* splitmix64-style mixer, shared idiom with Machine.Fault_plan:
   deterministic across OCaml versions, unlike Random.State. *)
let mix seed k =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (k + 1)))
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

(* Uniform in (0, 1]: never 0, so [log] below is safe. *)
let u01 seed k = (float_of_int (mix seed k) +. 1.0) /. 0x1p62

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (q *. float_of_int (n - 1)))

let soak ?(on_response = fun _ _ -> ()) t ~(cfg : soak_config)
    ~(make_request : int -> request) : soak_report =
  if cfg.so_requests < 1 then invalid_arg "Serve.soak: requests must be >= 1";
  if cfg.so_rate <= 0.0 then invalid_arg "Serve.soak: rate must be > 0";
  if cfg.so_batch < 1 then invalid_arg "Serve.soak: batch must be >= 1";
  let n = cfg.so_requests in
  (* Open-loop arrivals: exponential inter-arrivals at [so_rate] times
     the phase's rate multiplier — bursty/overload phases compress the
     arrival process without touching the seed stream. *)
  let phases = if cfg.so_phases = [] then [ (1.0, 1.0) ] else cfg.so_phases in
  List.iter
    (fun (f, m) ->
      if f <= 0.0 || m <= 0.0 then
        invalid_arg
          "Serve.soak: phase fractions and rate multipliers must be > 0")
    phases;
  let frac_total = List.fold_left (fun a (f, _) -> a +. f) 0.0 phases in
  let mult_of i =
    let x = float_of_int i /. float_of_int n *. frac_total in
    let rec go acc = function
      | [] -> 1.0
      | [ (_, m) ] -> m
      | (f, m) :: rest -> if x < acc +. f then m else go (acc +. f) rest
    in
    go 0.0 phases
  in
  let arrivals = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (-.log (u01 cfg.so_seed i) /. (cfg.so_rate *. mult_of i));
    arrivals.(i) <- !acc
  done;
  let before = stats_copy t.st in
  let keys_before = distinct_keys t in
  let hist_before = batch_histogram t in
  let trips_before = Breaker.trips t.breaker in
  let recov_before = Breaker.recoveries t.breaker in
  let latencies = ref [] in
  let clean = ref 0 and retried = ref 0 and degraded = ref 0 in
  let failed = ref 0 and rejected = ref 0 in
  let shed_admission = ref 0 and shed_deadline = ref 0 in
  let deadline_miss = ref 0 and queue_peak = ref 0 in
  let touched = Hashtbl.create 16 in  (* keys actually served this soak *)
  let now = ref 0.0 in
  let next = ref 0 in
  let saturated = ref false in
  (* Queue of admitted requests: EDF over absolute deadlines.  Value is
     (index, key, fn name, modeled est); the request object itself is
     re-materialized just before execution so batch members may share
     argument buffers. *)
  let q : (int * string * string * float) Edfq.t = Edfq.create () in
  let count_status (r : response) =
    match r.rs_status with
    | Rejected _ -> incr rejected
    | Completed o ->
      (match o.Supervisor.result with
       | None -> incr failed
       | Some _ when o.Supervisor.degraded -> incr degraded
       | Some _ when o.Supervisor.retried -> incr retried
       | Some _ -> incr clean)
  in
  while !next < n || not (Edfq.is_empty q) do
    (* Admit everything that has arrived by [now]. *)
    while !next < n && arrivals.(!next) <= !now do
      let j = !next in
      incr next;
      let rq = make_request j in
      let key = key_of t ~sizes:rq.rq_sizes rq.rq_fn in
      let qlen = Edfq.length q in
      if t.ov.ov_queue_high > 0 then begin
        if !saturated then begin
          if qlen <= t.ov.ov_queue_low then saturated := false
        end
        else if qlen >= t.ov.ov_queue_high then saturated := true
      end;
      if !saturated then begin
        incr shed_admission;
        let r =
          shed_response t rq key
            (Printf.sprintf
               "admission: queue depth %d at the high watermark %d; \
                shedding until it drains to %d"
               qlen t.ov.ov_queue_high t.ov.ov_queue_low)
        in
        on_response j r
      end
      else begin
        let est = model_estimate t key rq.rq_fn rq.rq_sizes in
        let rel =
          match rq.rq_deadline with
          | Some d -> d
          | None ->
            (* Default deadlines only make sense when the timeline and
               the estimate share units — i.e. in virtual time.  In
               wall-clock mode the model prices the paper's machine,
               not this host, so defaults stay infinite. *)
            if cfg.so_virtual then default_deadline t key rq.rq_fn rq.rq_sizes
            else Float.infinity
        in
        Edfq.push q ~deadline:(arrivals.(j) +. rel)
          (j, key, rq.rq_fn.Stmt.fn_name, est);
        if Edfq.length q > !queue_peak then queue_peak := Edfq.length q
      end
    done;
    if Edfq.is_empty q then begin
      (* Idle: jump to the next arrival. *)
      if !next < n then now := Float.max !now arrivals.(!next)
    end
    else begin
      (* Drain up to [so_batch] queued requests in EDF order. *)
      let batch = ref [] in
      while List.length !batch < cfg.so_batch && not (Edfq.is_empty q) do
        match Edfq.pop q with
        | Some (dl, v) -> batch := (dl, v) :: !batch
        | None -> ()
      done;
      let batch = List.rev !batch in
      (* Pass 1 — shed decisions and the virtual-time simulation, on
         the master only.  Predicted service: the model in virtual
         time, the warmed-up per-key EWMA (else the model estimate) in
         wall-clock mode.  In virtual time the simulated clock advances
         member by member exactly as the sequential drain's did, so
         every decision and completion stamp is identical for every
         pool size — the isolation verifier's determinism gate.  In
         wall-clock mode all of a batch's decisions use the clock at
         batch start (the members run concurrently; there is no
         sequential backlog to price), which is honest but — like every
         wall measurement — not deterministic. *)
      let sim_now = ref !now in
      let decisions =
        List.map
          (fun (dl, (j, key, fname, est)) ->
            let svc_pred =
              if cfg.so_virtual then Float.max est 1e-9
              else predicted_service t key ~est
            in
            if dl < Float.infinity && !sim_now +. svc_pred > dl then begin
              incr shed_deadline;
              locked t (fun () -> t.st.st_shed <- t.st.st_shed + 1);
              let r =
                { rs_id = j; rs_key = key; rs_hit = false;
                  rs_guard_checks = 0;
                  rs_status =
                    Rejected
                      (Diag.overload ~fn:fname
                         (Printf.sprintf
                            "deadline: %.3g s backlog at dispatch makes \
                             the deadline (t=%.3g s) unmeetable"
                            (!sim_now -. arrivals.(j)) dl)) }
              in
              `Shed (j, r)
            end
            else begin
              Hashtbl.replace touched key ();
              if cfg.so_virtual then
                sim_now := !sim_now +. Float.max est 1e-9;
              `Run (j, key, dl, !sim_now)
            end)
          batch
      in
      (* Pass 2 — materialize and execute.  Requests are materialized
         on the master in dispatch order ([make_request] may be
         stateful), grouped by cache key (same-key members stay
         sequential inside one group task), and the groups dispatched
         concurrently across the domain pool. *)
      let to_run =
        List.filter_map
          (function `Run (j, key, _, _) -> Some (j, key) | `Shed _ -> None)
          decisions
      in
      let by_id = Hashtbl.create 16 in
      let batch_elapsed = ref 0.0 in
      if to_run <> [] then begin
        let order = ref [] in
        let groups = Hashtbl.create 8 in
        List.iter
          (fun (j, key) ->
            let rq = make_request j in
            match Hashtbl.find_opt groups key with
            | Some l -> l := rq :: !l
            | None ->
              Hashtbl.add groups key (ref [ rq ]);
              order := key :: !order)
          to_run;
        let grouped =
          List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order
        in
        let t0 = Unix.gettimeofday () in
        let executed =
          in_group_scope t (fun parent -> run_groups t parent grouped)
        in
        batch_elapsed := Unix.gettimeofday () -. t0;
        List.iter
          (List.iter (fun ((r : response), wall) ->
               Hashtbl.replace by_id r.rs_id (r, wall)))
          executed
      end;
      (* Pass 3 — accounting and callbacks, on the master, in the
         canonical EDF dispatch order (so [on_response] ordering and
         the EWMA update sequence match the sequential drain).  Wall
         time advances by the measured elapsed of the whole concurrent
         batch; virtual time was already advanced by the pass-1
         simulation. *)
      let now_after =
        if cfg.so_virtual then !sim_now else !now +. !batch_elapsed
      in
      let served_in_batch = ref 0 in
      List.iter
        (function
          | `Shed (j, r) -> on_response j r
          | `Run (j, key, dl, done_at) ->
            let r, wall = Hashtbl.find by_id j in
            incr served_in_batch;
            note_service t key wall;
            let completion = if cfg.so_virtual then done_at else now_after in
            latencies := (completion -. arrivals.(j)) :: !latencies;
            if dl < Float.infinity && completion > dl then
              incr deadline_miss;
            count_status r;
            on_response j r)
        decisions;
      now := now_after;
      if !served_in_batch > 0 then record_batch t !served_in_batch
    end
  done;
  let makespan = !now in
  let latencies = Array.of_list !latencies in
  Array.sort compare latencies;
  let d get = get t.st - get before in
  let hits = d (fun s -> s.st_hits) in
  let compiles = d (fun s -> s.st_compiles) in
  let new_keys = distinct_keys t - keys_before in
  (* Steady state: discount each key's compulsory first miss. *)
  let steady_lookups = hits + compiles - new_keys in
  let hit_rate =
    if steady_lookups <= 0 then 1.0
    else float_of_int hits /. float_of_int steady_lookups
  in
  (* Warm-start rate: of the keys this soak actually served, the
     fraction the server already knew (no first-ever compile needed) —
     1.0 right after a successful snapshot load, 0.0 on a cold start. *)
  let keys_touched = Hashtbl.length touched in
  let warm_rate =
    if keys_touched = 0 then 1.0
    else
      Float.max 0.0
        (1.0 -. (float_of_int new_keys /. float_of_int keys_touched))
  in
  let served_total = !clean + !retried + !degraded in
  let hist_delta =
    List.filter_map
      (fun (size, count) ->
        let prior =
          Option.value ~default:0 (List.assoc_opt size hist_before)
        in
        if count > prior then Some (size, count - prior) else None)
      (batch_histogram t)
  in
  { sk_requests = n;
    sk_served_clean = !clean;
    sk_retried = !retried;
    sk_degraded = !degraded;
    sk_failed = !failed;
    sk_rejected = !rejected;
    sk_shed_admission = !shed_admission;
    sk_shed_deadline = !shed_deadline;
    sk_deadline_miss = !deadline_miss;
    sk_makespan_s = makespan;
    sk_throughput_rps =
      float_of_int served_total /. Float.max 1e-9 makespan;
    sk_p50_ms = 1e3 *. percentile latencies 0.50;
    sk_p99_ms = 1e3 *. percentile latencies 0.99;
    sk_hit_rate = hit_rate;
    sk_warm_rate = warm_rate;
    sk_compiles = compiles;
    sk_distinct_keys = new_keys;
    sk_recompiles_after_warmup = compiles - new_keys;
    sk_evictions = d (fun s -> s.st_evictions);
    sk_invalidations = d (fun s -> s.st_invalidations);
    sk_guard_checks = d (fun s -> s.st_guard_checks);
    sk_queue_peak = !queue_peak;
    sk_breaker_trips = Breaker.trips t.breaker - trips_before;
    sk_breaker_recoveries = Breaker.recoveries t.breaker - recov_before;
    sk_batch_hist = hist_delta }

let soak_report_to_string r =
  let pct x = 100.0 *. float_of_int x /. float_of_int r.sk_requests in
  let shed = r.sk_shed_admission + r.sk_shed_deadline in
  String.concat "\n"
    [ Printf.sprintf
        "%d request(s) drained in %.3fs simulated  (goodput %.1f req/s)"
        r.sk_requests r.sk_makespan_s r.sk_throughput_rps;
      Printf.sprintf
        "  served clean %4d (%5.1f%%)   retried %d   degraded %d   \
         failed %d   rejected %d"
        r.sk_served_clean (pct r.sk_served_clean) r.sk_retried
        r.sk_degraded r.sk_failed r.sk_rejected;
      Printf.sprintf
        "  overload: shed %d (%5.1f%%: %d admission, %d deadline)   \
         deadline misses %d   queue peak %d"
        shed (pct shed) r.sk_shed_admission r.sk_shed_deadline
        r.sk_deadline_miss r.sk_queue_peak;
      Printf.sprintf "  latency p50 %.3fms   p99 %.3fms (served only)"
        r.sk_p50_ms r.sk_p99_ms;
      Printf.sprintf
        "  cache: steady-state hit-rate %.1f%%   warm-start rate %.1f%%   \
         %d compile(s) for %d distinct key(s)   %d recompile(s) after \
         warmup"
        (100.0 *. r.sk_hit_rate) (100.0 *. r.sk_warm_rate) r.sk_compiles
        r.sk_distinct_keys r.sk_recompiles_after_warmup;
      Printf.sprintf "  cache: %d eviction(s)   %d invalidation(s)"
        r.sk_evictions r.sk_invalidations;
      Printf.sprintf "  breaker: %d trip(s)   %d recoveries"
        r.sk_breaker_trips r.sk_breaker_recoveries;
      Printf.sprintf "  guard checks executed: %d" r.sk_guard_checks;
      Printf.sprintf "  batches (size x count): %s"
        (if r.sk_batch_hist = [] then "-"
         else
           String.concat "  "
             (List.map
                (fun (s, c) -> Printf.sprintf "%dx%d" s c)
                r.sk_batch_hist)) ]
