(* Multi-tenant serving layer.  See serve.mli for the design; the short
   version: LRU of prepared Supervisor artifacts keyed on
   (canonical hash, size binding, policy knobs, lowering gate), shape
   specialization on miss, per-group shared budget scopes, sequential
   drain on the master domain with per-request parallel fan-out. *)

open Ft_ir
open Ft_runtime
module Machine = Ft_machine.Machine
module Supervisor = Ft_backend.Supervisor
module Compile_exec = Ft_backend.Compile_exec

type stats = {
  mutable st_hits : int;
  mutable st_misses : int;
  mutable st_compiles : int;
  mutable st_evictions : int;
  mutable st_invalidations : int;
  mutable st_served_clean : int;
  mutable st_retried : int;
  mutable st_degraded : int;
  mutable st_failed : int;
  mutable st_rejected : int;
  mutable st_guard_checks : int;
}

let stats_make () =
  { st_hits = 0; st_misses = 0; st_compiles = 0; st_evictions = 0;
    st_invalidations = 0; st_served_clean = 0; st_retried = 0;
    st_degraded = 0; st_failed = 0; st_rejected = 0; st_guard_checks = 0 }

let stats_copy s = { s with st_hits = s.st_hits }

type entry = { e_sv : Supervisor.t }

type t = {
  policy : Supervisor.policy;
  cache : entry Lru.t;
  st : stats;
  seen : (string, unit) Hashtbl.t;  (* every key ever, beyond the LRU *)
  batches : (int, int) Hashtbl.t;   (* batch size -> count *)
  (* Single-entry canonical-hash memo, keyed by physical equality: a
     soak serves the same function value thousands of times and must not
     re-print + re-hash the AST per request. *)
  mutable hash_memo : (Stmt.func * string) option;
}

let create ?(capacity = 16) ~policy () =
  { policy;
    cache = Lru.create ~capacity;
    st = stats_make ();
    seen = Hashtbl.create 64;
    batches = Hashtbl.create 8;
    hash_memo = None }

let stats t = t.st
let distinct_keys t = Hashtbl.length t.seen
let cache_length t = Lru.length t.cache

let canonical_hash t (fn : Stmt.func) =
  match t.hash_memo with
  | Some (fn', h) when fn' == fn -> h
  | _ ->
    let h = Canon.canonical_hash fn in
    t.hash_memo <- Some (fn, h);
    h

(* Everything that affects the compiled closures goes in the key; the
   supervisor always compiles with hooks, so that flag is fixed. *)
let key_of t ?(sizes = []) (fn : Stmt.func) =
  let sizes =
    List.sort (fun (a, _) (b, _) -> compare a b) sizes
    |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
    |> String.concat ","
  in
  let chain =
    String.concat ">" (List.map Supervisor.backend_name t.policy.backends)
  in
  Printf.sprintf "%s;sizes=%s;chain=%s;retries=%d;guard=%b;lower=%b"
    (canonical_hash t fn) sizes chain t.policy.retries t.policy.guard
    (Ft_lower.Pass.enabled ())

(* Shape specialization: substitute the size binding into the body and
   the declared parameter shapes, then simplify — loop bounds and shape
   arithmetic fold to constants, so the compiled artifact gets constant
   strides and the strength-reduced fast path.  The specialized function
   runs with an empty size binding. *)
let specialize (fn : Stmt.func) (sizes : (string * int) list) : Stmt.func =
  if sizes = [] then fn
  else begin
    let env n = Option.map Expr.int (List.assoc_opt n sizes) in
    let subst = Expr.subst_var env in
    let params =
      List.map
        (fun (p : Stmt.param) ->
          match p.Stmt.p_shape with
          | Stmt.Any_dim -> p
          | Stmt.Fixed es ->
            { p with Stmt.p_shape = Stmt.Fixed (List.map subst es) })
        fn.Stmt.fn_params
    in
    Ft_passes.Simplify.run
      { fn with
        Stmt.fn_params = params;
        Stmt.fn_body = Stmt.map_exprs subst fn.Stmt.fn_body }
  end

type request = {
  rq_id : int;
  rq_fn : Stmt.func;
  rq_sizes : (string * int) list;
  rq_args : (string * Tensor.t) list;
  rq_plan : Machine.Fault_plan.t option;
}

let request ?(sizes = []) ?plan ~id fn args =
  { rq_id = id; rq_fn = fn; rq_sizes = sizes; rq_args = args;
    rq_plan = plan }

type status =
  | Completed of Supervisor.outcome
  | Rejected of Diag.t

type response = {
  rs_id : int;
  rs_key : string;
  rs_hit : bool;
  rs_guard_checks : int;
  rs_status : status;
}

let served r =
  match r.rs_status with
  | Completed o -> o.Supervisor.result <> None
  | Rejected _ -> false

let lookup t (rq : request) : string * entry * bool =
  let key = key_of t ~sizes:rq.rq_sizes rq.rq_fn in
  match Lru.find t.cache key with
  | Some e ->
    t.st.st_hits <- t.st.st_hits + 1;
    (key, e, true)
  | None ->
    t.st.st_misses <- t.st.st_misses + 1;
    t.st.st_compiles <- t.st.st_compiles + 1;
    if not (Hashtbl.mem t.seen key) then Hashtbl.add t.seen key ();
    let fn = specialize rq.rq_fn rq.rq_sizes in
    let e = { e_sv = Supervisor.prepare ~policy:t.policy fn } in
    (match Lru.add t.cache key e with
     | None -> ()
     | Some _ -> t.st.st_evictions <- t.st.st_evictions + 1);
    (key, e, false)

(* Admission control: a request whose argument footprint alone exceeds
   the memory budget can never complete on a budgeted backend — reject
   it up front instead of letting it churn through the chain. *)
let admit t (rq : request) : Diag.t option =
  match t.policy.Supervisor.mem_budget_bytes with
  | None -> None
  | Some cap ->
    let footprint =
      List.fold_left (fun a (_, x) -> a + Tensor.byte_size x) 0 rq.rq_args
    in
    if footprint <= cap then None
    else
      Some
        (Diag.make ~code:Diag.Oom ~fn:rq.rq_fn.Stmt.fn_name
           (Printf.sprintf
              "admission: request footprint %d bytes exceeds the %d-byte \
               memory budget"
              footprint cap))

let serve_one t (rq : request) : response =
  match admit t rq with
  | Some d ->
    t.st.st_rejected <- t.st.st_rejected + 1;
    { rs_id = rq.rq_id;
      rs_key = key_of t ~sizes:rq.rq_sizes rq.rq_fn;
      rs_hit = false; rs_guard_checks = 0; rs_status = Rejected d }
  | None ->
    let key, e, hit = lookup t rq in
    (* Artifacts are cached and reused, so raw guard counters accumulate
       across requests; report this request's work as a snapshot delta. *)
    let snaps =
      List.map
        (fun (_, g) -> (g, Compile_exec.guard_snapshot g))
        (Supervisor.guard_stats e.e_sv)
    in
    let o = Supervisor.exec ?plan:rq.rq_plan e.e_sv rq.rq_args in
    let checks =
      List.fold_left
        (fun a (g, s) -> a + Compile_exec.guard_checks_since g s)
        0 snaps
    in
    t.st.st_guard_checks <- t.st.st_guard_checks + checks;
    (match o.Supervisor.result with
     | None ->
       t.st.st_failed <- t.st.st_failed + 1
     | Some _ when o.Supervisor.degraded ->
       t.st.st_degraded <- t.st.st_degraded + 1
     | Some _ when o.Supervisor.retried ->
       t.st.st_retried <- t.st.st_retried + 1
     | Some _ -> t.st.st_served_clean <- t.st.st_served_clean + 1);
    (* A demotion or fail-closed taints the artifact's primary: drop the
       entry so the next request compiles fresh instead of replaying a
       degraded closure. *)
    if o.Supervisor.result = None || o.Supervisor.degraded then begin
      if Lru.mem t.cache key then begin
        Lru.remove t.cache key;
        t.st.st_invalidations <- t.st.st_invalidations + 1
      end
    end;
    { rs_id = rq.rq_id; rs_key = key; rs_hit = hit;
      rs_guard_checks = checks; rs_status = Completed o }

let record_batch t size =
  if size > 0 then
    Hashtbl.replace t.batches size
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.batches size))

let batch_histogram t =
  List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) t.batches [])

(* One batch group shares a single budget scope; the supervisor sees it
   active and uses it instead of stacking per-attempt budgets. *)
let in_group_scope t f =
  match t.policy.Supervisor.mem_budget_bytes with
  | Some cap when not (Tensor.budget_active ()) ->
    Tensor.with_budget ~fn:"serve-batch" cap f
  | _ -> f ()

let serve t rq =
  record_batch t 1;
  serve_one t rq

let serve_batch t (rqs : request list) : response list =
  (* Stable grouping by cache key: first arrival decides group order,
     members keep arrival order inside their group. *)
  let order = ref [] in
  let groups : (string, request list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun rq ->
      let key = key_of t ~sizes:rq.rq_sizes rq.rq_fn in
      match Hashtbl.find_opt groups key with
      | Some l -> l := rq :: !l
      | None ->
        Hashtbl.add groups key (ref [ rq ]);
        order := key :: !order)
    rqs;
  let responses =
    List.concat_map
      (fun key ->
        let members = List.rev !(Hashtbl.find groups key) in
        record_batch t (List.length members);
        in_group_scope t (fun () -> List.map (serve_one t) members))
      (List.rev !order)
  in
  (* Back to request order. *)
  let by_id = Hashtbl.create (List.length responses) in
  List.iter (fun r -> Hashtbl.replace by_id r.rs_id r) responses;
  List.map (fun rq -> Hashtbl.find by_id rq.rq_id) rqs

(* ------------------------------------------------------------------ *)
(* Soak driver *)

type soak_config = {
  so_seed : int;
  so_requests : int;
  so_rate : float;
  so_batch : int;
}

type soak_report = {
  sk_requests : int;
  sk_served_clean : int;
  sk_retried : int;
  sk_degraded : int;
  sk_failed : int;
  sk_rejected : int;
  sk_makespan_s : float;
  sk_throughput_rps : float;
  sk_p50_ms : float;
  sk_p99_ms : float;
  sk_hit_rate : float;
  sk_compiles : int;
  sk_distinct_keys : int;
  sk_recompiles_after_warmup : int;
  sk_evictions : int;
  sk_invalidations : int;
  sk_guard_checks : int;
  sk_batch_hist : (int * int) list;
}

(* splitmix64-style mixer, shared idiom with Machine.Fault_plan:
   deterministic across OCaml versions, unlike Random.State. *)
let mix seed k =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (k + 1)))
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

(* Uniform in (0, 1]: never 0, so [log] below is safe. *)
let u01 seed k = (float_of_int (mix seed k) +. 1.0) /. 0x1p62

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (q *. float_of_int (n - 1)))

let soak ?(on_response = fun _ _ -> ()) t ~(cfg : soak_config)
    ~(make_request : int -> request) : soak_report =
  if cfg.so_requests < 1 then invalid_arg "Serve.soak: requests must be >= 1";
  if cfg.so_rate <= 0.0 then invalid_arg "Serve.soak: rate must be > 0";
  if cfg.so_batch < 1 then invalid_arg "Serve.soak: batch must be >= 1";
  let n = cfg.so_requests in
  (* Open-loop: exponential inter-arrivals at [so_rate] req/s. *)
  let arrivals = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (-.log (u01 cfg.so_seed i) /. cfg.so_rate);
    arrivals.(i) <- !acc
  done;
  let before = stats_copy t.st in
  let keys_before = distinct_keys t in
  let hist_before = batch_histogram t in
  let latencies = Array.make n 0.0 in
  let clean = ref 0 and retried = ref 0 and degraded = ref 0 in
  let failed = ref 0 and rejected = ref 0 in
  let now = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Idle until the next arrival, then drain up to [so_batch] queued
       requests as one batch.  Requests are materialized lazily, one at
       a time, so batch members may share argument buffers. *)
    if arrivals.(!i) > !now then now := arrivals.(!i);
    let first = !i in
    while !i < n && !i - first < cfg.so_batch && arrivals.(!i) <= !now do
      incr i
    done;
    let count = !i - first in
    record_batch t count;
    let t0 = Unix.gettimeofday () in
    in_group_scope t (fun () ->
        for j = first to !i - 1 do
          let r = serve_one t (make_request j) in
          (match r.rs_status with
           | Rejected _ -> incr rejected
           | Completed o ->
             (match o.Supervisor.result with
              | None -> incr failed
              | Some _ when o.Supervisor.degraded -> incr degraded
              | Some _ when o.Supervisor.retried -> incr retried
              | Some _ -> incr clean));
          on_response j r
        done);
    let service = Unix.gettimeofday () -. t0 in
    now := !now +. service;
    (* The batch completes as a unit on the simulated timeline. *)
    for j = first to !i - 1 do
      latencies.(j) <- !now -. arrivals.(j)
    done
  done;
  let makespan = !now in
  Array.sort compare latencies;
  let d get = get t.st - get before in
  let hits = d (fun s -> s.st_hits) in
  let compiles = d (fun s -> s.st_compiles) in
  let new_keys = distinct_keys t - keys_before in
  (* Steady state: discount each key's compulsory first miss. *)
  let steady_lookups = hits + compiles - new_keys in
  let hit_rate =
    if steady_lookups <= 0 then 1.0
    else float_of_int hits /. float_of_int steady_lookups
  in
  let hist_delta =
    List.filter_map
      (fun (size, count) ->
        let prior =
          Option.value ~default:0 (List.assoc_opt size hist_before)
        in
        if count > prior then Some (size, count - prior) else None)
      (batch_histogram t)
  in
  { sk_requests = n;
    sk_served_clean = !clean;
    sk_retried = !retried;
    sk_degraded = !degraded;
    sk_failed = !failed;
    sk_rejected = !rejected;
    sk_makespan_s = makespan;
    sk_throughput_rps = float_of_int n /. Float.max 1e-9 makespan;
    sk_p50_ms = 1e3 *. percentile latencies 0.50;
    sk_p99_ms = 1e3 *. percentile latencies 0.99;
    sk_hit_rate = hit_rate;
    sk_compiles = compiles;
    sk_distinct_keys = new_keys;
    sk_recompiles_after_warmup = compiles - new_keys;
    sk_evictions = d (fun s -> s.st_evictions);
    sk_invalidations = d (fun s -> s.st_invalidations);
    sk_guard_checks = d (fun s -> s.st_guard_checks);
    sk_batch_hist = hist_delta }

let soak_report_to_string r =
  let pct x = 100.0 *. float_of_int x /. float_of_int r.sk_requests in
  String.concat "\n"
    [ Printf.sprintf
        "%d request(s) drained in %.3fs simulated  (%.1f req/s)"
        r.sk_requests r.sk_makespan_s r.sk_throughput_rps;
      Printf.sprintf
        "  served clean %4d (%5.1f%%)   retried %d   degraded %d   \
         failed %d   rejected %d"
        r.sk_served_clean (pct r.sk_served_clean) r.sk_retried
        r.sk_degraded r.sk_failed r.sk_rejected;
      Printf.sprintf "  latency p50 %.3fms   p99 %.3fms" r.sk_p50_ms
        r.sk_p99_ms;
      Printf.sprintf
        "  cache: steady-state hit-rate %.1f%%   %d compile(s) for %d \
         distinct key(s)   %d recompile(s) after warmup"
        (100.0 *. r.sk_hit_rate) r.sk_compiles r.sk_distinct_keys
        r.sk_recompiles_after_warmup;
      Printf.sprintf "  cache: %d eviction(s)   %d invalidation(s)"
        r.sk_evictions r.sk_invalidations;
      Printf.sprintf "  guard checks executed: %d" r.sk_guard_checks;
      Printf.sprintf "  batches (size x count): %s"
        (if r.sk_batch_hist = [] then "-"
         else
           String.concat "  "
             (List.map
                (fun (s, c) -> Printf.sprintf "%dx%d" s c)
                r.sk_batch_hist)) ]
