(** Multi-tenant serving layer: a persistent compiled-artifact cache in
    front of the execution supervisor, with request batching, overload
    resilience, and an open-loop soak driver.

    {2 Artifact cache}

    Compiling a function (twice: parallel and sequential backends, with
    supervisor hooks) dominates small-request latency, so a server keeps
    prepared {!Ft_backend.Supervisor} artifacts in a bounded LRU keyed on
    everything that affects the compiled closures:

    - the function's canonical hash ({!Ft_ir.Canon} — alpha-equivalent
      programs share artifacts),
    - the static-shape binding (the request's size-variable values; a
      miss {e shape-specializes} the function by substituting the sizes
      and simplifying, so the cached artifact runs with constant shapes),
    - the backend chain, retry count and guard flag of the policy,
    - the lowering-pipeline gate ([FT_LOWER]) in effect at compile time.

    Entries are invalidated when serving through them demotes the
    request down the backend chain or fails closed — unless the key's
    circuit breaker holds it (below), in which case the artifact is
    kept and the breaker, not recompilation, handles the broken primary.

    {2 Overload resilience}

    Three mechanisms keep the server deterministic and structured under
    load it cannot absorb; all rejections carry a {!Ft_ir.Diag.t} with
    the [overload] fault code — requests are never silently dropped.

    {e Deadline-aware EDF + shedding}: requests may carry a relative
    deadline (seconds from arrival); absent one, the default is
    [ov_deadline_slack] times the modeled service time (the
    [Supervisor.deadline_of_estimate] model at slack 1), where the
    timeline has matching units — the soak's virtual-time mode, and
    [serve_batch]'s modeled backlog.  Queued work drains
    earliest-deadline-first (FIFO among equal deadlines), and a request
    whose deadline cannot be met given the predicted backlog ahead of it
    is shed at dispatch instead of served late.

    {e Bounded queue with watermarks}: when [ov_queue_high > 0], the
    soak's queue saturating to the high watermark sheds new arrivals at
    admission until it drains to [ov_queue_low] (hysteresis, so the
    server does not flap at the boundary).

    {e Per-key circuit breakers} ({!Breaker}): [ov_breaker_k]
    consecutive primary failures on a key trip it; tripped keys route
    straight to the fallback chain — skipping the suspect primary, and
    keeping the cached artifact so the compile count stays flat — until
    [ov_breaker_cooldown] fallback-served requests later a half-open
    probe decides between recovery and another cooldown.

    {2 Crash-safe persistence}

    [save_snapshot] persists cache {e metadata} (not compiled code):
    per-entry canonical hash, size binding, and policy fingerprint,
    under {!Snapshot}'s checksummed, atomically-renamed framing.
    [load_snapshot] verifies the file and re-prepares each entry through
    a caller-supplied hash resolver — a warm start.  Any corruption
    (truncation, bit-flip, bad version) is detected, reported in the
    {!warm_report}, and treated as a cold start; it never raises.

    {2 Batching and budgets}

    [serve_batch] groups compatible requests (same cache key) and serves
    each group under one shared scoped {!Ft_runtime.Tensor} memory
    budget ([policy.mem_budget_bytes]); the supervisor detects the
    enclosing scope and does not stack its own.  Group members drain
    {e sequentially} on the master domain — the supervisor's run context
    is process-global and compiled closures bind arguments through
    shared cells, so concurrent [Supervisor.exec] calls would race —
    while each member's parallel loops fan out on the {!Exec_par} domain
    pool.  Admission control rejects (never executes) a request whose
    argument footprint alone exceeds the budget.

    All serving runs on the master domain; a server is not thread-safe. *)

open Ft_ir
open Ft_runtime
module Machine = Ft_machine.Machine
module Supervisor = Ft_backend.Supervisor

(** {1 Server} *)

(** Monotonic counters.  Cache counters ([hits] .. [invalidations])
    count lookups; request counters ([served_clean] .. [shed]) count
    requests; [guard_checks] totals per-request runtime bounds-check
    deltas (meaningful only under a [guard] policy). *)
type stats = {
  mutable st_hits : int;
  mutable st_misses : int;   (** lookups that shape-specialized + compiled *)
  mutable st_compiles : int;
      (** actual [Supervisor.prepare] calls: misses {e plus} warm-start
          re-preparations from [load_snapshot] — equal to [st_misses]
          only on a server that never warm-started *)
  mutable st_evictions : int;     (** LRU casualties *)
  mutable st_invalidations : int; (** entries dropped after demotion / fail-closed *)
  mutable st_served_clean : int;
  mutable st_retried : int;       (** served after transient retry on the primary *)
  mutable st_degraded : int;      (** served by a backend below the primary *)
  mutable st_failed : int;        (** failed closed *)
  mutable st_rejected : int;      (** refused by admission control (footprint) *)
  mutable st_shed : int;          (** refused by overload control (queue/deadline) *)
  mutable st_guard_checks : int;
}

val stats_copy : stats -> stats

(** Overload-control knobs; see the header for semantics. *)
type overload_policy = {
  ov_queue_high : int;
      (** soak queue depth that triggers admission shedding; [0] =
          unbounded queue (no admission shedding) *)
  ov_queue_low : int;
      (** depth at which shedding stops again (must be below high) *)
  ov_breaker_k : int;
      (** consecutive primary failures that trip a key's breaker;
          [<= 0] disables breakers *)
  ov_breaker_cooldown : int;
      (** fallback-served requests on a tripped key before the
          half-open probe *)
  ov_deadline_slack : float;
      (** default deadline = slack x modeled service time *)
}

(** Unbounded queue, breaker [k = 3] / cooldown [8], deadline slack 8. *)
val default_overload : overload_policy

type t

(** [create ~policy ()] with an artifact cache of [capacity] entries
    (default 16) and [overload] knobs (default {!default_overload};
    breakers are forced off for single-backend policies — there is no
    fallback to route to). *)
val create :
  ?capacity:int -> ?overload:overload_policy -> policy:Supervisor.policy ->
  unit -> t

val stats : t -> stats

(** Cache keys ever observed (not bounded by the LRU): the denominator
    for "recompiles after warmup". *)
val distinct_keys : t -> int

(** Current cache occupancy. *)
val cache_length : t -> int

(** The cache key [serve] would use — exposed for tests and reports. *)
val key_of : t -> ?sizes:(string * int) list -> Stmt.func -> string

(** Modeled service seconds for a request's specialized program (the
    quantity default deadlines and backlog predictions are built from);
    [0.] when the cost model has no estimate.  Memoized per cache key. *)
val modeled_service : t -> ?sizes:(string * int) list -> Stmt.func -> float

(** {1 Circuit-breaker observability} *)

val breaker_state : t -> string -> Breaker.state
val breaker_trips : t -> int
val breaker_recoveries : t -> int

(** {1 Requests} *)

type request = {
  rq_id : int;
  rq_fn : Stmt.func;
  rq_sizes : (string * int) list;  (** size-variable binding, specialized away *)
  rq_args : (string * Tensor.t) list;
  rq_plan : Machine.Fault_plan.t option;  (** per-request fault injection *)
  rq_deadline : float option;
      (** relative deadline in seconds from arrival; [None] = the
          modeled default where the timeline has matching units
          (virtual-time soak, [serve_batch] backlog), else unbounded *)
}

val request :
  ?sizes:(string * int) list ->
  ?plan:Machine.Fault_plan.t ->
  ?deadline:float ->
  id:int ->
  Stmt.func ->
  (string * Tensor.t) list ->
  request

type status =
  | Completed of Supervisor.outcome
  | Rejected of Diag.t
      (** refused without executing: admission control ([oom] code) or
          overload shedding ([overload] code) *)

type response = {
  rs_id : int;
  rs_key : string;
  rs_hit : bool;  (** served through an already-cached artifact *)
  rs_guard_checks : int;
      (** runtime bounds checks this request executed (guard policies) *)
  rs_status : status;
}

(** [true] iff the request completed with a serving backend. *)
val served : response -> bool

(** Serve one request (admission check, cache lookup or
    specialize+compile, breaker routing, supervised execution,
    invalidation on demotion).  Never raises. *)
val serve : t -> request -> response

(** Serve a batch under EDF: requests order by relative deadline
    (explicit, else the modeled default), with the stable key-grouping
    applied among equal deadlines — so a deadline-free batch groups and
    serves exactly as it always did.  A member whose deadline the
    modeled backlog ahead of it makes unmeetable is shed with a
    structured [overload] rejection.  Each group runs under one shared
    budget scope, and responses come back in request order.  The
    batch-size histogram records one entry per group (served members
    only). *)
val serve_batch : t -> request list -> response list

(** Batch-size histogram observed so far: [(size, count)] sorted by
    size.  [serve] counts as a batch of 1. *)
val batch_histogram : t -> (int * int) list

(** {1 Cache persistence} *)

(** Outcome of a warm-start attempt. *)
type warm_report = {
  ws_present : bool;           (** a snapshot file existed *)
  ws_corrupt : string option;  (** verification failure, for the log *)
  ws_records : int;            (** records in a verified snapshot *)
  ws_loaded : int;             (** entries re-prepared into the cache *)
  ws_skipped : int;
      (** verified records not loaded: unresolvable hash, policy
          fingerprint mismatch, already cached, or re-prepare failure *)
}

(** Persist the cache's metadata (canonical hash, size binding, policy
    fingerprint per entry — no compiled code) to an atomic, checksummed
    {!Snapshot} file.  Returns the record count.  Entries are written
    LRU-first so a reload restores recency order. *)
val save_snapshot : t -> path:string -> int

(** Warm-start from [path]: verify the snapshot, resolve each record's
    canonical hash back to a function via [resolve] (return [None] for
    unknown hashes), and specialize + re-prepare the artifact.  Each
    load counts in [st_compiles] but {e not} [st_misses] — no request
    missed.  Corruption of any kind yields [ws_corrupt = Some reason]
    and an untouched cache (cold start); this function never raises. *)
val load_snapshot :
  t -> path:string -> resolve:(string -> Stmt.func option) -> warm_report

val warm_report_to_string : warm_report -> string

(** {1 Soak driver}

    Seeded open-loop load: arrival times are drawn from an exponential
    inter-arrival distribution (splitmix64 mixer — deterministic across
    OCaml versions) at [so_rate] requests/second, scaled per-phase by
    [so_phases] rate multipliers (bursty/overload episodes), and
    requests queue for a single batching server that drains in EDF
    order.  Latency is completion minus arrival on the simulated
    timeline, so percentiles reflect queueing as well as execution.

    Two clocks are available.  {e Wall-clock} (default): service time
    is measured [Unix.gettimeofday] around each request; default
    deadlines are infinite (the cost model prices the paper's machine,
    not this host) and backlog prediction uses a per-key EWMA of
    observed service.  {e Virtual time} ([so_virtual]): the timeline
    advances by the modeled service time per request — fully
    deterministic (used by the chaos CI gate), with default deadlines
    from [ov_deadline_slack] x the model. *)

type soak_config = {
  so_seed : int;
  so_requests : int;
  so_rate : float;   (** mean arrivals per second, > 0 *)
  so_batch : int;    (** max requests drained per batch, >= 1 *)
  so_phases : (float * float) list;
      (** [(fraction, rate multiplier)] arrival phases; [[]] = one
          steady phase.  Fractions are normalized over the request
          count; all entries must be positive. *)
  so_virtual : bool; (** virtual-time clock (deterministic) *)
}

(** Construct a {!soak_config}; [phases] defaults to steady,
    [virtual_time] to wall-clock. *)
val soak_cfg :
  ?phases:(float * float) list ->
  ?virtual_time:bool ->
  seed:int -> requests:int -> rate:float -> batch:int -> unit ->
  soak_config

type soak_report = {
  sk_requests : int;          (** offered load (served + shed + rejected) *)
  sk_served_clean : int;
  sk_retried : int;
  sk_degraded : int;
  sk_failed : int;
  sk_rejected : int;          (** footprint admission rejections *)
  sk_shed_admission : int;    (** shed at the queue's high watermark *)
  sk_shed_deadline : int;     (** shed at dispatch: deadline unmeetable *)
  sk_deadline_miss : int;
      (** served but completed past the deadline (wall-clock mode only;
          virtual time sheds instead of serving late) *)
  sk_makespan_s : float;      (** simulated time to drain the load *)
  sk_throughput_rps : float;  (** goodput: requests served / makespan *)
  sk_p50_ms : float;          (** latency percentiles over served requests *)
  sk_p99_ms : float;
  sk_hit_rate : float;
      (** steady-state: hits / (lookups - each key's compulsory first
          miss); 1.0 when every request after warmup hit *)
  sk_warm_rate : float;
      (** of the keys served this soak, the fraction already known to
          the server — 1.0 right after a successful warm start, 0.0 on
          a cold start *)
  sk_compiles : int;
  sk_distinct_keys : int;    (** new cache keys this soak introduced *)
  sk_recompiles_after_warmup : int;  (** compiles - distinct keys *)
  sk_evictions : int;
  sk_invalidations : int;
  sk_guard_checks : int;
  sk_queue_peak : int;
  sk_breaker_trips : int;
  sk_breaker_recoveries : int;
  sk_batch_hist : (int * int) list;  (** batches formed, by size *)
}

(** [soak t ~cfg ~make_request] drains [cfg.so_requests] requests.
    [make_request i] materializes request [i]; it is called once at
    admission (for the key and deadline) and again immediately before
    the request executes (requests may share argument buffers: restore
    them there), so it must be idempotent.  [on_response] fires right
    after each response — served or shed — e.g. for bitwise checks
    against fresh-compile references. *)
val soak :
  ?on_response:(int -> response -> unit) ->
  t ->
  cfg:soak_config ->
  make_request:(int -> request) ->
  soak_report

val soak_report_to_string : soak_report -> string

(** Nearest-rank percentile over a sorted array ([0.] when empty) —
    exposed for report tooling and tests. *)
val percentile : float array -> float -> float
