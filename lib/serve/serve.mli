(** Multi-tenant serving layer: a persistent compiled-artifact cache in
    front of the execution supervisor, with request batching, overload
    resilience, and an open-loop soak driver.

    {2 Artifact cache}

    Compiling a function (twice: parallel and sequential backends, with
    supervisor hooks) dominates small-request latency, so a server keeps
    prepared {!Ft_backend.Supervisor} artifacts in a bounded LRU keyed on
    everything that affects the compiled closures:

    - the function's canonical hash ({!Ft_ir.Canon} — alpha-equivalent
      programs share artifacts),
    - the static-shape binding (the request's size-variable values; a
      miss {e shape-specializes} the function by substituting the sizes
      and simplifying, so the cached artifact runs with constant shapes),
    - the backend chain, retry count and guard flag of the policy,
    - the lowering-pipeline gate ([FT_LOWER]) in effect at compile time.

    Entries are invalidated when serving through them demotes the
    request down the backend chain or fails closed — unless the key's
    circuit breaker holds it (below), in which case the artifact is
    kept and the breaker, not recompilation, handles the broken primary.

    {2 Overload resilience}

    Three mechanisms keep the server deterministic and structured under
    load it cannot absorb; all rejections carry a {!Ft_ir.Diag.t} with
    the [overload] fault code — requests are never silently dropped.

    {e Deadline-aware EDF + shedding}: requests may carry a relative
    deadline (seconds from arrival); absent one, the default is
    [ov_deadline_slack] times the modeled service time (the
    [Supervisor.deadline_of_estimate] model at slack 1), where the
    timeline has matching units — the soak's virtual-time mode, and
    [serve_batch]'s modeled backlog.  Queued work drains
    earliest-deadline-first (FIFO among equal deadlines), and a request
    whose deadline cannot be met given the predicted backlog ahead of it
    is shed at dispatch instead of served late.

    {e Bounded queue with watermarks}: when [ov_queue_high > 0], the
    soak's queue saturating to the high watermark sheds new arrivals at
    admission until it drains to [ov_queue_low] (hysteresis, so the
    server does not flap at the boundary).

    {e Per-key circuit breakers} ({!Breaker}): [ov_breaker_k]
    consecutive primary failures on a key trip it; tripped keys route
    straight to the fallback chain — skipping the suspect primary, and
    keeping the cached artifact so the compile count stays flat — until
    [ov_breaker_cooldown] fallback-served requests later a half-open
    probe decides between recovery and another cooldown.

    {2 Crash-safe persistence}

    [save_snapshot] persists cache {e metadata} (not compiled code):
    per-entry canonical hash, size binding, and policy fingerprint,
    under {!Snapshot}'s checksummed, atomically-renamed framing.
    [load_snapshot] verifies the file and re-prepares each entry through
    a caller-supplied hash resolver — a warm start.  Any corruption
    (truncation, bit-flip, bad version) is detected, reported in the
    {!warm_report}, and treated as a cold start; it never raises.

    {2 Concurrent batching, isolation, budgets}

    [serve_batch] groups compatible requests (same cache key) and
    dispatches the groups {e concurrently} across the {!Ft_backend.Exec_par}
    domain pool — each group one pool task, independent requests on
    separate domains.  Every request is its own fault domain: the
    supervisor mints it a per-request {!Ft_machine.Machine.Ctx} run
    context (fault plan, deadline clock, cancellation, cost counters)
    and a per-request memory budget on its executing domain, so
    retries, fallback demotions, OOM unwinds and cancellations are
    contained to the request that suffered them; even an unexpected
    worker-domain exception marks only that group's remaining members
    failed, and the pool stays reusable.  Same-key members stay
    sequential inside their group task (compiled artifacts bind
    arguments through shared cells and are not reentrant), which also
    keeps per-request guard-check deltas and fault ordinals exact.
    All shedding/admission decisions run on the master before dispatch,
    so they are independent of the pool size.

    When [policy.mem_budget_bytes] is set, a batch serves under one
    shared parent budget scope: each executing domain adopts it and the
    supervisor chains a per-request child budget under it — requests
    keep their own accounting while the group keeps its aggregate cap.
    Admission control rejects (never executes) a request whose argument
    footprint alone exceeds the budget.

    A server value is thread-safe: cache, stats, histograms and the
    hash memo are guarded by internal mutexes, breakers by their own
    lock, and execution always runs outside every server lock. *)

open Ft_ir
open Ft_runtime
module Machine = Ft_machine.Machine
module Supervisor = Ft_backend.Supervisor

(** {1 Server} *)

(** Monotonic counters.  Cache counters ([hits] .. [invalidations])
    count lookups; request counters ([served_clean] .. [shed]) count
    requests; [guard_checks] totals per-request runtime bounds-check
    deltas (meaningful only under a [guard] policy). *)
type stats = {
  mutable st_hits : int;
  mutable st_misses : int;   (** lookups that shape-specialized + compiled *)
  mutable st_compiles : int;
      (** actual [Supervisor.prepare] calls: misses {e plus} warm-start
          re-preparations from [load_snapshot] — equal to [st_misses]
          only on a server that never warm-started *)
  mutable st_evictions : int;     (** LRU casualties *)
  mutable st_invalidations : int; (** entries dropped after demotion / fail-closed *)
  mutable st_served_clean : int;
  mutable st_retried : int;       (** served after transient retry on the primary *)
  mutable st_degraded : int;      (** served by a backend below the primary *)
  mutable st_failed : int;        (** failed closed *)
  mutable st_rejected : int;      (** refused by admission control (footprint) *)
  mutable st_shed : int;          (** refused by overload control (queue/deadline) *)
  mutable st_guard_checks : int;
}

val stats_copy : stats -> stats

(** Overload-control knobs; see the header for semantics. *)
type overload_policy = {
  ov_queue_high : int;
      (** soak queue depth that triggers admission shedding; [0] =
          unbounded queue (no admission shedding) *)
  ov_queue_low : int;
      (** depth at which shedding stops again (must be below high) *)
  ov_breaker_k : int;
      (** consecutive primary failures that trip a key's breaker;
          [<= 0] disables breakers *)
  ov_breaker_cooldown : int;
      (** fallback-served requests on a tripped key before the
          half-open probe *)
  ov_deadline_slack : float;
      (** default deadline = slack x modeled service time *)
  ov_ewma_warmup : int;
      (** observations of a key's wall service before the EWMA is
          trusted for shedding; below it the cost-model estimate is
          used instead *)
}

(** Unbounded queue, breaker [k = 3] / cooldown [8], deadline slack 8,
    EWMA warmup 5. *)
val default_overload : overload_policy

type t

(** [create ~policy ()] with an artifact cache of [capacity] entries
    (default 16) and [overload] knobs (default {!default_overload};
    breakers are forced off for single-backend policies — there is no
    fallback to route to).  [sequential_dispatch] (default false)
    drains batch groups one at a time on the calling domain instead of
    fanning them across the pool, with everything else — pool size,
    chunking, per-request contexts and budgets — unchanged: the
    isolation verifier's baseline, where dispatch concurrency is the
    only variable. *)
val create :
  ?capacity:int -> ?overload:overload_policy -> ?sequential_dispatch:bool ->
  policy:Supervisor.policy -> unit -> t

val stats : t -> stats

(** Cache keys ever observed (not bounded by the LRU): the denominator
    for "recompiles after warmup". *)
val distinct_keys : t -> int

(** Current cache occupancy. *)
val cache_length : t -> int

(** The cache key [serve] would use — exposed for tests and reports. *)
val key_of : t -> ?sizes:(string * int) list -> Stmt.func -> string

(** Modeled service seconds for a request's specialized program (the
    quantity default deadlines and backlog predictions are built from);
    [0.] when the cost model has no estimate.  Memoized per cache key. *)
val modeled_service : t -> ?sizes:(string * int) list -> Stmt.func -> float

(** Wall-clock service prediction for [key]: the per-key EWMA of
    observed service once it has at least [ov_ewma_warmup] observations,
    else the caller's cost-model estimate [est]. *)
val predicted_service : t -> string -> est:float -> float

(** Record one observed wall service time for [key] (EWMA update plus
    the observation count gating {!predicted_service}). *)
val note_service : t -> string -> float -> unit

(** {1 Circuit-breaker observability} *)

val breaker_state : t -> string -> Breaker.state
val breaker_trips : t -> int
val breaker_recoveries : t -> int

(** {1 Requests} *)

type request = {
  rq_id : int;
  rq_fn : Stmt.func;
  rq_sizes : (string * int) list;  (** size-variable binding, specialized away *)
  rq_args : (string * Tensor.t) list;
  rq_plan : Machine.Fault_plan.t option;  (** per-request fault injection *)
  rq_deadline : float option;
      (** relative deadline in seconds from arrival; [None] = the
          modeled default where the timeline has matching units
          (virtual-time soak, [serve_batch] backlog), else unbounded *)
}

val request :
  ?sizes:(string * int) list ->
  ?plan:Machine.Fault_plan.t ->
  ?deadline:float ->
  id:int ->
  Stmt.func ->
  (string * Tensor.t) list ->
  request

type status =
  | Completed of Supervisor.outcome
  | Rejected of Diag.t
      (** refused without executing: admission control ([oom] code) or
          overload shedding ([overload] code) *)

type response = {
  rs_id : int;
  rs_key : string;
  rs_hit : bool;  (** served through an already-cached artifact *)
  rs_guard_checks : int;
      (** runtime bounds checks this request executed (guard policies) *)
  rs_status : status;
}

(** [true] iff the request completed with a serving backend. *)
val served : response -> bool

(** Serve one request (admission check, cache lookup or
    specialize+compile, breaker routing, supervised execution,
    invalidation on demotion).  Never raises. *)
val serve : t -> request -> response

(** Serve a batch under EDF: requests order by relative deadline
    (explicit, else the modeled default), with the stable key-grouping
    applied among equal deadlines — so a deadline-free batch groups
    exactly as it always did.  A member whose deadline the modeled
    backlog ahead of it makes unmeetable is shed with a structured
    [overload] rejection; shed decisions are made on the master before
    any execution, with the sequential drain's backlog accounting, so
    they do not depend on the pool size.  Surviving groups then
    dispatch concurrently across the domain pool (one task per group,
    same-key members sequential within it), each request under its own
    run context and per-request budget chained under the batch's shared
    scope.  Responses come back in request order.  The batch-size
    histogram records one entry per group (served members only). *)
val serve_batch : t -> request list -> response list

(** Batch-size histogram observed so far: [(size, count)] sorted by
    size.  [serve] counts as a batch of 1. *)
val batch_histogram : t -> (int * int) list

(** {1 Cache persistence} *)

(** Outcome of a warm-start attempt. *)
type warm_report = {
  ws_present : bool;           (** a snapshot file existed *)
  ws_corrupt : string option;  (** verification failure, for the log *)
  ws_records : int;            (** records in a verified snapshot *)
  ws_loaded : int;             (** entries re-prepared into the cache *)
  ws_skipped : int;
      (** verified records not loaded: unresolvable hash, policy
          fingerprint mismatch, already cached, or re-prepare failure *)
}

(** Persist the cache's metadata (canonical hash, size binding, policy
    fingerprint per entry — no compiled code) to an atomic, checksummed
    {!Snapshot} file.  Returns the record count.  Entries are written
    LRU-first so a reload restores recency order. *)
val save_snapshot : t -> path:string -> int

(** Warm-start from [path]: verify the snapshot, resolve each record's
    canonical hash back to a function via [resolve] (return [None] for
    unknown hashes), and specialize + re-prepare the artifact.  Each
    load counts in [st_compiles] but {e not} [st_misses] — no request
    missed.  Corruption of any kind yields [ws_corrupt = Some reason]
    and an untouched cache (cold start); this function never raises. *)
val load_snapshot :
  t -> path:string -> resolve:(string -> Stmt.func option) -> warm_report

val warm_report_to_string : warm_report -> string

(** {1 Soak driver}

    Seeded open-loop load: arrival times are drawn from an exponential
    inter-arrival distribution (splitmix64 mixer — deterministic across
    OCaml versions) at [so_rate] requests/second, scaled per-phase by
    [so_phases] rate multipliers (bursty/overload episodes), and
    requests queue for a single batching server that drains in EDF
    order.  Latency is completion minus arrival on the simulated
    timeline, so percentiles reflect queueing as well as execution.

    Batches drain concurrently (the [serve_batch] machinery: shed
    decisions and accounting on the master, key-groups dispatched
    across the domain pool).

    Two clocks are available.  {e Wall-clock} (default): the timeline
    advances by the measured elapsed of each concurrent batch drain;
    default deadlines are infinite (the cost model prices the paper's
    machine, not this host) and backlog prediction uses a per-key EWMA
    of observed service once warmed up ([ov_ewma_warmup] observations),
    the cost-model estimate before that.  {e Virtual time}
    ([so_virtual]): the timeline advances by the modeled service time
    per request, simulated on the master exactly as the sequential
    drain would — fully deterministic for every pool size (used by the
    chaos CI gate), with default deadlines from [ov_deadline_slack] x
    the model. *)

type soak_config = {
  so_seed : int;
  so_requests : int;
  so_rate : float;   (** mean arrivals per second, > 0 *)
  so_batch : int;    (** max requests drained per batch, >= 1 *)
  so_phases : (float * float) list;
      (** [(fraction, rate multiplier)] arrival phases; [[]] = one
          steady phase.  Fractions are normalized over the request
          count; all entries must be positive. *)
  so_virtual : bool; (** virtual-time clock (deterministic) *)
}

(** Construct a {!soak_config}; [phases] defaults to steady,
    [virtual_time] to wall-clock. *)
val soak_cfg :
  ?phases:(float * float) list ->
  ?virtual_time:bool ->
  seed:int -> requests:int -> rate:float -> batch:int -> unit ->
  soak_config

type soak_report = {
  sk_requests : int;          (** offered load (served + shed + rejected) *)
  sk_served_clean : int;
  sk_retried : int;
  sk_degraded : int;
  sk_failed : int;
  sk_rejected : int;          (** footprint admission rejections *)
  sk_shed_admission : int;    (** shed at the queue's high watermark *)
  sk_shed_deadline : int;     (** shed at dispatch: deadline unmeetable *)
  sk_deadline_miss : int;
      (** served but completed past the deadline (wall-clock mode only;
          virtual time sheds instead of serving late) *)
  sk_makespan_s : float;      (** simulated time to drain the load *)
  sk_throughput_rps : float;  (** goodput: requests served / makespan *)
  sk_p50_ms : float;          (** latency percentiles over served requests *)
  sk_p99_ms : float;
  sk_hit_rate : float;
      (** steady-state: hits / (lookups - each key's compulsory first
          miss); 1.0 when every request after warmup hit *)
  sk_warm_rate : float;
      (** of the keys served this soak, the fraction already known to
          the server — 1.0 right after a successful warm start, 0.0 on
          a cold start *)
  sk_compiles : int;
  sk_distinct_keys : int;    (** new cache keys this soak introduced *)
  sk_recompiles_after_warmup : int;  (** compiles - distinct keys *)
  sk_evictions : int;
  sk_invalidations : int;
  sk_guard_checks : int;
  sk_queue_peak : int;
  sk_breaker_trips : int;
  sk_breaker_recoveries : int;
  sk_batch_hist : (int * int) list;  (** batches formed, by size *)
}

(** [soak t ~cfg ~make_request] drains [cfg.so_requests] requests.
    [make_request i] materializes request [i]; it is called once at
    admission (for the key and deadline) and again — always on the
    master, in dispatch order — just before the request's batch
    executes, so it must be idempotent.  Because a batch's groups run
    concurrently, requests that can land in one batch under different
    keys must not share argument buffers (same-key members may: they
    serialize).  [on_response] fires on the master after each batch, in
    EDF dispatch order, for served and shed requests alike — e.g. for
    bitwise checks against fresh-compile references. *)
val soak :
  ?on_response:(int -> response -> unit) ->
  t ->
  cfg:soak_config ->
  make_request:(int -> request) ->
  soak_report

val soak_report_to_string : soak_report -> string

(** Nearest-rank percentile over a sorted array ([0.] when empty) —
    exposed for report tooling and tests. *)
val percentile : float array -> float -> float
