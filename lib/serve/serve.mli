(** Multi-tenant serving layer: a persistent compiled-artifact cache in
    front of the execution supervisor, with request batching and an
    open-loop soak driver.

    {2 Artifact cache}

    Compiling a function (twice: parallel and sequential backends, with
    supervisor hooks) dominates small-request latency, so a server keeps
    prepared {!Ft_backend.Supervisor} artifacts in a bounded LRU keyed on
    everything that affects the compiled closures:

    - the function's canonical hash ({!Ft_ir.Canon} — alpha-equivalent
      programs share artifacts),
    - the static-shape binding (the request's size-variable values; a
      miss {e shape-specializes} the function by substituting the sizes
      and simplifying, so the cached artifact runs with constant shapes),
    - the backend chain, retry count and guard flag of the policy,
    - the lowering-pipeline gate ([FT_LOWER]) in effect at compile time.

    Entries are invalidated when serving through them demotes the
    request down the backend chain or fails closed — the artifact's
    primary is suspect, so the next request recompiles fresh rather than
    replaying a degraded closure.

    {2 Batching and budgets}

    [serve_batch] groups compatible requests (same cache key) and serves
    each group under one shared scoped {!Ft_runtime.Tensor} memory
    budget ([policy.mem_budget_bytes]); the supervisor detects the
    enclosing scope and does not stack its own.  Group members drain
    {e sequentially} on the master domain — the supervisor's run context
    is process-global and compiled closures bind arguments through
    shared cells, so concurrent [Supervisor.exec] calls would race —
    while each member's parallel loops fan out on the {!Exec_par} domain
    pool.  Admission control rejects (never executes) a request whose
    argument footprint alone exceeds the budget.

    All serving runs on the master domain; a server is not thread-safe. *)

open Ft_ir
open Ft_runtime
module Machine = Ft_machine.Machine
module Supervisor = Ft_backend.Supervisor

(** {1 Server} *)

(** Monotonic counters.  Cache counters ([hits] .. [invalidations])
    count lookups; request counters ([served_clean] .. [rejected]) count
    requests; [guard_checks] totals per-request runtime bounds-check
    deltas (meaningful only under a [guard] policy). *)
type stats = {
  mutable st_hits : int;
  mutable st_misses : int;        (** lookups that shape-specialized + compiled *)
  mutable st_compiles : int;      (** = misses; kept distinct for clarity *)
  mutable st_evictions : int;     (** LRU casualties *)
  mutable st_invalidations : int; (** entries dropped after demotion / fail-closed *)
  mutable st_served_clean : int;
  mutable st_retried : int;       (** served after transient retry on the primary *)
  mutable st_degraded : int;      (** served by a backend below the primary *)
  mutable st_failed : int;        (** failed closed *)
  mutable st_rejected : int;      (** refused by admission control *)
  mutable st_guard_checks : int;
}

val stats_copy : stats -> stats

type t

(** [create ~policy ()] with an artifact cache of [capacity] entries
    (default 16). *)
val create : ?capacity:int -> policy:Supervisor.policy -> unit -> t

val stats : t -> stats

(** Cache keys ever observed (not bounded by the LRU): the denominator
    for "recompiles after warmup". *)
val distinct_keys : t -> int

(** Current cache occupancy. *)
val cache_length : t -> int

(** The cache key [serve] would use — exposed for tests and reports. *)
val key_of : t -> ?sizes:(string * int) list -> Stmt.func -> string

(** {1 Requests} *)

type request = {
  rq_id : int;
  rq_fn : Stmt.func;
  rq_sizes : (string * int) list;  (** size-variable binding, specialized away *)
  rq_args : (string * Tensor.t) list;
  rq_plan : Machine.Fault_plan.t option;  (** per-request fault injection *)
}

val request :
  ?sizes:(string * int) list ->
  ?plan:Machine.Fault_plan.t ->
  id:int ->
  Stmt.func ->
  (string * Tensor.t) list ->
  request

type status =
  | Completed of Supervisor.outcome
  | Rejected of Diag.t  (** admission control; the request never executed *)

type response = {
  rs_id : int;
  rs_key : string;
  rs_hit : bool;  (** served through an already-cached artifact *)
  rs_guard_checks : int;
      (** runtime bounds checks this request executed (guard policies) *)
  rs_status : status;
}

(** [true] iff the request completed with a serving backend. *)
val served : response -> bool

(** Serve one request (admission check, cache lookup or
    specialize+compile, supervised execution, invalidation on
    demotion).  Never raises. *)
val serve : t -> request -> response

(** Serve a batch: requests are grouped by cache key (stable — first
    arrival decides group order), each group runs under one shared
    budget scope, and responses come back in request order.  The
    batch-size histogram records one entry per group. *)
val serve_batch : t -> request list -> response list

(** Batch-size histogram observed so far: [(size, count)] sorted by
    size.  [serve] counts as a batch of 1. *)
val batch_histogram : t -> (int * int) list

(** {1 Soak driver}

    Seeded open-loop load: arrival times are drawn from an exponential
    inter-arrival distribution (splitmix64 mixer — deterministic across
    OCaml versions) at [so_rate] requests/second and requests queue for
    a single batching server.  Service time is measured wall-clock;
    latency is completion minus arrival on the simulated timeline, so
    percentiles reflect queueing as well as execution. *)

type soak_config = {
  so_seed : int;
  so_requests : int;
  so_rate : float;   (** mean arrivals per second, > 0 *)
  so_batch : int;    (** max requests drained per batch, >= 1 *)
}

type soak_report = {
  sk_requests : int;
  sk_served_clean : int;
  sk_retried : int;
  sk_degraded : int;
  sk_failed : int;
  sk_rejected : int;
  sk_makespan_s : float;     (** simulated time to drain the load *)
  sk_throughput_rps : float; (** requests / makespan *)
  sk_p50_ms : float;
  sk_p99_ms : float;
  sk_hit_rate : float;
      (** steady-state: hits / (lookups - each key's compulsory first
          miss); 1.0 when every request after warmup hit *)
  sk_compiles : int;
  sk_distinct_keys : int;    (** new cache keys this soak introduced *)
  sk_recompiles_after_warmup : int;  (** compiles - distinct keys *)
  sk_evictions : int;
  sk_invalidations : int;
  sk_guard_checks : int;
  sk_batch_hist : (int * int) list;  (** batches formed, by size *)
}

(** [soak t ~cfg ~make_request] drains [cfg.so_requests] requests.
    [make_request i] is called immediately before request [i] executes
    (requests may share argument buffers: restore them there), and
    [on_response] right after each response — e.g. for bitwise checks
    against fresh-compile references. *)
val soak :
  ?on_response:(int -> response -> unit) ->
  t ->
  cfg:soak_config ->
  make_request:(int -> request) ->
  soak_report

val soak_report_to_string : soak_report -> string
