(* Per-key circuit breakers.  See breaker.mli for the protocol; the
   internal state machine adds the failure count (Closed) and the
   cooldown countdown (Open), which the public [state] view drops.

   Every operation runs under one internal mutex: concurrent serving
   domains route and record through the same breaker, and the
   read-modify-write transitions (cooldown countdown, half-open probe
   claim) must be atomic — in particular, exactly one of several
   concurrent requests on a half-open key may claim the probe. *)

type st =
  | S_closed of int   (* consecutive primary failures so far *)
  | S_open of int     (* fallback-served requests until the probe *)
  | S_half_open

type state =
  | Closed
  | Open
  | Half_open

type t = {
  k : int;
  cooldown : int;
  tbl : (string, st ref) Hashtbl.t;
  mutable trips : int;
  mutable recoveries : int;
  mu : Mutex.t;
}

let create ~k ~cooldown =
  { k; cooldown = max 0 cooldown; tbl = Hashtbl.create 16;
    trips = 0; recoveries = 0; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let cell t key =
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r
  | None ->
    let r = ref (S_closed 0) in
    Hashtbl.add t.tbl key r;
    r

let state t key =
  if t.k <= 0 then Closed
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None | Some { contents = S_closed _ } -> Closed
        | Some { contents = S_open _ } -> Open
        | Some { contents = S_half_open } -> Half_open)

let route t key =
  if t.k <= 0 then `Primary
  else
    locked t (fun () ->
        let r = cell t key in
        match !r with
        | S_closed _ -> `Primary
        | S_open n when n > 0 ->
          r := S_open (n - 1);
          `Fallback
        | S_open _ ->
          (* The half-open probe claim: the transition happens under the
             lock, so of any number of concurrent requests on the key
             exactly one gets [`Probe] — contemporaries observe
             [S_half_open] below and fall back. *)
          r := S_half_open;
          `Probe
        | S_half_open ->
          (* A probe is in flight (or its result was never recorded,
             e.g. the probe request was rejected before executing):
             stay cautious. *)
          `Fallback)

let trip t r =
  r := S_open t.cooldown;
  t.trips <- t.trips + 1

let record t key ~primary_ok =
  if t.k > 0 then
    locked t (fun () ->
        let r = cell t key in
        match !r with
        | S_closed c ->
          if primary_ok then (if c <> 0 then r := S_closed 0)
          else if c + 1 >= t.k then trip t r
          else r := S_closed (c + 1)
        | S_half_open ->
          if primary_ok then begin
            r := S_closed 0;
            t.recoveries <- t.recoveries + 1
          end
          else trip t r
        | S_open _ -> ())

let trips t = locked t (fun () -> t.trips)
let recoveries t = locked t (fun () -> t.recoveries)

let tripped_keys t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ r acc ->
          match !r with S_closed _ -> acc | S_open _ | S_half_open -> acc + 1)
        t.tbl 0)
