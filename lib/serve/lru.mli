(** Bounded LRU map with string keys.

    The serving layer's artifact cache: [find] marks an entry
    most-recently-used, [add] evicts the least-recently-used entry once
    [capacity] is exceeded and returns the casualty so the caller can
    account for it.  Not thread-safe — the serving layer runs cache
    operations on the master domain only. *)

type 'a t

(** [create ~capacity] with [capacity >= 1] (else [Invalid_argument]). *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Lookup; a hit becomes the most-recently-used entry. *)
val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** Insert or replace as most-recently-used.  Returns the evicted
    least-recently-used binding when the insert pushed the map over
    capacity ([None] on replace or when still under capacity). *)
val add : 'a t -> string -> 'a -> (string * 'a) option

(** Drop the binding if present. *)
val remove : 'a t -> string -> unit

(** Bindings from most- to least-recently used. *)
val to_list : 'a t -> (string * 'a) list
