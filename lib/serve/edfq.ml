(* EDF priority queue: array-backed binary min-heap ordered by
   (deadline, insertion sequence) — the sequence number makes ties FIFO
   and the ordering total, so pop order is deterministic. *)

type 'a entry = {
  en_deadline : float;
  en_seq : int;
  en_value : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable seq : int;
}

let create () = { heap = [||]; size = 0; seq = 0 }
let length q = q.size
let is_empty q = q.size = 0

let before a b =
  a.en_deadline < b.en_deadline
  || (a.en_deadline = b.en_deadline && a.en_seq < b.en_seq)

let swap q i j =
  let t = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(p) then begin
      swap q i p;
      sift_up q p
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!m) then m := l;
  if r < q.size && before q.heap.(r) q.heap.(!m) then m := r;
  if !m <> i then begin
    swap q i !m;
    sift_down q !m
  end

let push q ~deadline v =
  let e = { en_deadline = deadline; en_seq = q.seq; en_value = v } in
  q.seq <- q.seq + 1;
  if q.size = Array.length q.heap then begin
    let cap = max 8 (2 * q.size) in
    let heap = Array.make cap e in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let e = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (e.en_deadline, e.en_value)
  end

let peek q =
  if q.size = 0 then None
  else Some (q.heap.(0).en_deadline, q.heap.(0).en_value)
