(* Bounded LRU: hash table of entries stamped with a monotonically
   increasing use tick; eviction scans for the minimum stamp.  Eviction
   is O(n), which is the right trade at artifact-cache sizes (tens of
   entries, each worth a compile) — recency updates, the hot-path
   operation, stay O(1). *)

type 'a entry = {
  mutable value : 'a;
  mutable stamp : int;
}

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; tbl = Hashtbl.create (2 * capacity); tick = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some e ->
    touch t e;
    Some e.value

let mem t k = Hashtbl.mem t.tbl k

let oldest t =
  Hashtbl.fold
    (fun k e acc ->
      match acc with
      | Some (_, e') when e'.stamp <= e.stamp -> acc
      | _ -> Some (k, e))
    t.tbl None

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some e ->
    e.value <- v;
    touch t e;
    None
  | None ->
    let e = { value = v; stamp = 0 } in
    touch t e;
    Hashtbl.replace t.tbl k e;
    if Hashtbl.length t.tbl <= t.cap then None
    else
      (match oldest t with
       | None -> None
       | Some (k', e') ->
         Hashtbl.remove t.tbl k';
         Some (k', e'.value))

let remove t k = Hashtbl.remove t.tbl k

let to_list t =
  let all = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl [] in
  List.map
    (fun (k, e) -> (k, e.value))
    (List.sort (fun (_, a) (_, b) -> compare b.stamp a.stamp) all)
