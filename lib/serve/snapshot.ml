(* Checksummed, length-prefixed, atomically-renamed record files.  See
   snapshot.mli for the framing. *)

let magic = "FTSN"
let version = 1

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the standard
   zlib/PNG checksum, implemented here so persistence needs no deps. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 (s : string) : int32 =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let write ~path records =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_int32_le b (Int32.of_int (List.length records));
  List.iter
    (fun r ->
      Buffer.add_int32_le b (Int32.of_int (String.length r));
      Buffer.add_int32_le b (crc32 r);
      Buffer.add_string b r)
    records;
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Buffer.output_buffer oc b;
      Out_channel.flush oc);
  Sys.rename tmp path

type load =
  | Loaded of string list
  | Corrupt of string
  | Absent

let header_len = 4 + 4 + 4
let record_hdr_len = 4 + 4

(* Snapshots are metadata files (tens of entries); cap their size so a
   mangled length field cannot make the reader allocate gigabytes. *)
let max_record_len = 1 lsl 20

let read ~path =
  if not (Sys.file_exists path) then Absent
  else begin
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error m -> Corrupt (Printf.sprintf "unreadable: %s" m)
    | data ->
      let len = String.length data in
      let bytes = Bytes.unsafe_of_string data in
      let u32 off = Int32.to_int (Bytes.get_int32_le bytes off) in
      if len < header_len then
        Corrupt
          (Printf.sprintf "truncated header: %d byte(s), need %d" len
             header_len)
      else if String.sub data 0 4 <> magic then
        Corrupt (Printf.sprintf "bad magic %S" (String.sub data 0 4))
      else if u32 4 <> version then
        Corrupt
          (Printf.sprintf "unsupported version %d (this build reads %d)"
             (u32 4) version)
      else begin
        let count = u32 8 in
        if count < 0 then Corrupt "negative record count"
        else begin
          let rec go i off acc =
            if i = count then
              if off = len then Loaded (List.rev acc)
              else
                Corrupt
                  (Printf.sprintf "%d trailing byte(s) after record %d"
                     (len - off) count)
            else if off + record_hdr_len > len then
              Corrupt
                (Printf.sprintf
                   "truncated at record %d/%d: header needs %d byte(s), \
                    %d left"
                   (i + 1) count record_hdr_len (len - off))
            else begin
              let rlen = u32 off in
              let rcrc = Bytes.get_int32_le bytes (off + 4) in
              if rlen < 0 || rlen > max_record_len then
                Corrupt
                  (Printf.sprintf "record %d/%d: implausible length %d"
                     (i + 1) count rlen)
              else if off + record_hdr_len + rlen > len then
                Corrupt
                  (Printf.sprintf
                     "truncated at record %d/%d: payload needs %d \
                      byte(s), %d left"
                     (i + 1) count rlen (len - off - record_hdr_len))
              else begin
                let payload =
                  String.sub data (off + record_hdr_len) rlen
                in
                if crc32 payload <> rcrc then
                  Corrupt
                    (Printf.sprintf
                       "record %d/%d: CRC mismatch (stored %08lx, \
                        computed %08lx)"
                       (i + 1) count rcrc (crc32 payload))
                else
                  go (i + 1)
                    (off + record_hdr_len + rlen)
                    (payload :: acc)
              end
            end
          in
          go 0 header_len []
        end
      end
  end

(* -------------------------------------------------------------- *)
(* Corruption injection (tests / chaos gate)                       *)

let read_all path = In_channel.with_open_bin path In_channel.input_all

let write_raw path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let corrupt_truncate ?(bytes = 7) ~path () =
  let data = read_all path in
  let keep = max 0 (String.length data - max 1 bytes) in
  write_raw path (String.sub data 0 keep)

let corrupt_bitflip ~path =
  let data = read_all path in
  let len = String.length data in
  if len <= header_len + record_hdr_len then
    raise (Sys_error (path ^ ": too small to bit-flip a record payload"));
  (* Last byte of the file is inside the last record's payload (records
     end flush with EOF), so flipping it must trip that record's CRC. *)
  let b = Bytes.of_string data in
  let i = len - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  write_raw path (Bytes.unsafe_to_string b)
