(** Per-key circuit breakers for the serving layer.

    A cache entry whose chain primary keeps failing (demotions down the
    backend chain, or fail-closed) would otherwise be invalidated and
    recompiled on every request — a recompile-and-fail loop that burns
    compile time without ever serving off the primary.  The breaker
    bounds that loop: after [k] {e consecutive} primary failures on a
    key it {e trips} ([Open]), and subsequent requests on the key route
    straight to the fallback chain (skipping the primary entirely, and
    never invalidating the artifact — compile count stays flat while
    tripped).  After [cooldown] fallback-served requests on the key, the
    next request becomes a {e half-open probe} through the full chain:
    if the primary serves it, the breaker closes (recovery); if not, it
    re-opens for another cooldown.

    The cooldown is counted in requests on the key, not wall time, so
    breaker behavior is deterministic under the seeded soak drivers.

    Thread-safe: every operation is atomic under an internal mutex, so
    concurrent serving domains can route and record through one
    breaker.  In particular, when several requests race on a half-open
    key, exactly one claims the [`Probe]; the rest route [`Fallback]. *)

type t

(** Observable per-key state.  Keys never seen are [Closed]. *)
type state =
  | Closed     (** primary in use; consecutive-failure count below [k] *)
  | Open       (** tripped: requests route to the fallback chain *)
  | Half_open  (** cooldown expired: the next result decides *)

(** [create ~k ~cooldown] trips after [k] consecutive primary failures
    and probes after [cooldown] fallback-served requests.  [k <= 0]
    disables the breaker entirely ([route] always grants the primary,
    [record] is a no-op). *)
val create : k:int -> cooldown:int -> t

val state : t -> string -> state

(** Routing decision for the next request on [key] — call exactly once
    per request, before executing it (an [Open] key's cooldown counts
    down per call):
    - [`Primary]: breaker closed, use the full chain;
    - [`Fallback]: tripped, skip the primary (and skip [record]);
    - [`Probe]: half-open, use the full chain and [record] the result. *)
val route : t -> string -> [ `Primary | `Fallback | `Probe ]

(** Outcome of a request that was routed [`Primary] or [`Probe]:
    [primary_ok] iff the chain's primary served it (no demotion, no
    fail-closed).  Never call for [`Fallback] routes — a fallback result
    says nothing about the primary's health. *)
val record : t -> string -> primary_ok:bool -> unit

(** Times any key transitioned into [Open] (including re-opens after a
    failed probe). *)
val trips : t -> int

(** Times a half-open probe closed a breaker. *)
val recoveries : t -> int

(** Keys currently [Open] or [Half_open]. *)
val tripped_keys : t -> int
