(** Earliest-deadline-first priority queue.

    The serving layer's pending-request queue: [pop] returns the entry
    with the smallest deadline; entries with equal deadlines come back
    in insertion (FIFO) order, so a load of deadline-free requests
    (deadline = [infinity]) degrades exactly to the old FIFO drain.
    Not thread-safe — queue operations run on the master domain only. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q ~deadline v] enqueues [v].  [deadline] is an absolute time
    on whatever timeline the caller runs (simulated seconds in the soak
    driver); [Float.infinity] means "no deadline". *)
val push : 'a t -> deadline:float -> 'a -> unit

(** Remove and return the (deadline, value) with the earliest deadline,
    FIFO among ties; [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** Earliest deadline without removing it. *)
val peek : 'a t -> (float * 'a) option
