(** Crash-safe record files for cache persistence.

    A snapshot is a flat file of opaque string records under a
    checksummed binary framing:

    {v
    header:  magic "FTSN" | version (u32 LE) | record count (u32 LE)
    record:  payload length (u32 LE) | CRC-32 of payload (u32 LE) | payload
    v}

    Writes are atomic: the file is assembled in [path ^ ".tmp"] and
    renamed over [path], so a crash mid-write can never leave a
    half-written snapshot under the live name — readers see either the
    old complete file or the new one.

    Reads are paranoid: a short header, wrong magic, unknown version,
    record-count/length inconsistency, trailing garbage, or any CRC
    mismatch yields [Corrupt reason] — never an exception, and never a
    silently truncated record list.  The caller's contract is
    detect-log-and-rebuild: treat [Corrupt] like an empty cache and
    start cold.

    [corrupt_truncate] / [corrupt_bitflip] are fault-injection helpers
    for tests and the chaos gate. *)

(** The on-disk format version this build writes and accepts. *)
val version : int

(** Atomic write: records become one snapshot file at [path].  Raises
    [Sys_error] only for environmental failures (permissions, ENOSPC) —
    never for any records value. *)
val write : path:string -> string list -> unit

type load =
  | Loaded of string list  (** verified: every record's CRC checked *)
  | Corrupt of string      (** structural damage; reason for the log *)
  | Absent                 (** no file at [path] — a normal cold start *)

val read : path:string -> load

(** {1 Corruption injection}

    Both require an existing, non-trivial snapshot (raise [Sys_error]
    on a missing file). *)

(** Drop the final [bytes] (default 7) of the file: a torn write /
    short copy.  Detected via the record-count/length framing. *)
val corrupt_truncate : ?bytes:int -> path:string -> unit -> unit

(** Flip one bit inside the last record's payload: silent media
    corruption.  Detected via the per-record CRC. *)
val corrupt_bitflip : path:string -> unit
