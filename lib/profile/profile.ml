(** Execution profiler: observed per-statement and per-kernel counters.
    See the interface for the counting conventions shared by both
    executors. *)

open Ft_ir
module Machine = Ft_machine.Machine

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable load_bytes : int;
  mutable store_bytes : int;
  mutable dram_bytes : int;
  mutable fadd : int;
  mutable fmul : int;
  mutable fdiv : int;
  mutable fspecial : int;
  mutable fother : int;
  mutable iops : int;
  mutable cmps : int;
  mutable entries : int;
  mutable trips : int;
  mutable atomics : int;  (* atomic RMW updates ([Reduce_to] with [r_atomic]) *)
}

let zero_counters () =
  { loads = 0; stores = 0; load_bytes = 0; store_bytes = 0; dram_bytes = 0;
    fadd = 0; fmul = 0; fdiv = 0; fspecial = 0; fother = 0; iops = 0;
    cmps = 0; entries = 0; trips = 0; atomics = 0 }

let copy_counters c = { c with loads = c.loads }
let flops c = c.fadd + c.fmul + c.fdiv + c.fspecial + c.fother

let add_counters ~into c =
  into.loads <- into.loads + c.loads;
  into.stores <- into.stores + c.stores;
  into.load_bytes <- into.load_bytes + c.load_bytes;
  into.store_bytes <- into.store_bytes + c.store_bytes;
  into.dram_bytes <- into.dram_bytes + c.dram_bytes;
  into.fadd <- into.fadd + c.fadd;
  into.fmul <- into.fmul + c.fmul;
  into.fdiv <- into.fdiv + c.fdiv;
  into.fspecial <- into.fspecial + c.fspecial;
  into.fother <- into.fother + c.fother;
  into.iops <- into.iops + c.iops;
  into.cmps <- into.cmps + c.cmps;
  into.entries <- into.entries + c.entries;
  into.trips <- into.trips + c.trips;
  into.atomics <- into.atomics + c.atomics

let diff_counters a b =
  { loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    load_bytes = a.load_bytes - b.load_bytes;
    store_bytes = a.store_bytes - b.store_bytes;
    dram_bytes = a.dram_bytes - b.dram_bytes;
    fadd = a.fadd - b.fadd;
    fmul = a.fmul - b.fmul;
    fdiv = a.fdiv - b.fdiv;
    fspecial = a.fspecial - b.fspecial;
    fother = a.fother - b.fother;
    iops = a.iops - b.iops;
    cmps = a.cmps - b.cmps;
    entries = a.entries - b.entries;
    trips = a.trips - b.trips;
    atomics = a.atomics - b.atomics }

let counters_equal (a : counters) (b : counters) = a = b
let is_zero c = c = zero_counters ()

let counters_to_string c =
  Printf.sprintf
    "flops=%d (add=%d mul=%d div=%d special=%d other=%d) loads=%d stores=%d \
     iops=%d cmps=%d dram=%dB atomics=%d trips=%d/%d"
    (flops c) c.fadd c.fmul c.fdiv c.fspecial c.fother c.loads c.stores
    c.iops c.cmps c.dram_bytes c.atomics c.trips c.entries

(* ------------------------------------------------------------------ *)
(* Operator classification (syntactic, root node only) *)

type opclass =
  | C_add
  | C_mul
  | C_div
  | C_special
  | C_other
  | C_int
  | C_cmp
  | C_none

let classify : Expr.t -> opclass = function
  | Expr.Binop ((Expr.Add | Expr.Sub), _, _) -> C_add
  | Expr.Binop (Expr.Mul, _, _) -> C_mul
  | Expr.Binop (Expr.Div, _, _) -> C_div
  | Expr.Binop (Expr.Pow, _, _) -> C_special
  | Expr.Binop ((Expr.Min | Expr.Max), _, _) -> C_other
  | Expr.Binop ((Expr.Floor_div | Expr.Mod), _, _) -> C_int
  | Expr.Binop
      ((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _) ->
    C_cmp
  | Expr.Binop ((Expr.L_and | Expr.L_or), _, _) -> C_none
  | Expr.Unop ((Expr.Sqrt | Expr.Exp | Expr.Ln | Expr.Sigmoid | Expr.Tanh), _)
    ->
    C_special
  | Expr.Unop
      ((Expr.Neg | Expr.Abs | Expr.Square | Expr.Floor_op | Expr.Ceil_op), _)
    ->
    C_other
  | Expr.Unop (Expr.Not, _) -> C_none
  | Expr.Select _ -> C_other
  | Expr.Int_const _ | Expr.Float_const _ | Expr.Bool_const _ | Expr.Var _
  | Expr.Load _ | Expr.Cast _ | Expr.Meta_ndim _ | Expr.Meta_shape _ ->
    C_none

let bump_class c = function
  | C_add -> c.fadd <- c.fadd + 1
  | C_mul -> c.fmul <- c.fmul + 1
  | C_div -> c.fdiv <- c.fdiv + 1
  | C_special -> c.fspecial <- c.fspecial + 1
  | C_other -> c.fother <- c.fother + 1
  | C_int -> c.iops <- c.iops + 1
  | C_cmp -> c.cmps <- c.cmps + 1
  | C_none -> ()

let bump_expr c e = bump_class c (classify e)

let expr_bump e =
  match classify e with
  | C_none -> None
  | k -> Some (fun c -> bump_class c k)

let bump_reduce ?(atomic = false) c op =
  if atomic then c.atomics <- c.atomics + 1;
  match op with
  | Types.R_add -> c.fadd <- c.fadd + 1
  | Types.R_mul -> c.fmul <- c.fmul + 1
  | Types.R_min | Types.R_max -> c.fother <- c.fother + 1

(* ------------------------------------------------------------------ *)
(* Kernels and the profile *)

type kernel = {
  k_sid : int;
  k_label : string option;
  k_index : int;
  k_root : Stmt.t;
  k_ctr : counters;
  mutable k_parallel : int;
  mutable k_vectorized : bool;
  mutable k_is_lib : bool;
  k_footprint : (string, int) Hashtbl.t;
  k_t0 : float;
  mutable k_t1 : float;
}

let footprint_bytes k = Hashtbl.fold (fun _ b acc -> acc + b) k.k_footprint 0

type t = {
  sid_ctrs : (int, counters) Hashtbl.t;
  mutable rev_kernels : kernel list;
  mutable n_kernels : int;
  mutable cur : (kernel * counters) option; (* kernel, totals-at-entry *)
  mutable live_bytes : int;
  mutable peak_live : int;
  t_start : float;
}

let create () =
  { sid_ctrs = Hashtbl.create 64; rev_kernels = []; n_kernels = 0;
    cur = None; live_bytes = 0; peak_live = 0;
    t_start = Unix.gettimeofday () }

let ctr p sid =
  match Hashtbl.find_opt p.sid_ctrs sid with
  | Some c -> c
  | None ->
    let c = zero_counters () in
    Hashtbl.replace p.sid_ctrs sid c;
    c

let stmt_counters p sid =
  match Hashtbl.find_opt p.sid_ctrs sid with
  | Some c -> copy_counters c
  | None -> zero_counters ()

let totals p =
  let acc = zero_counters () in
  Hashtbl.iter (fun _ c -> add_counters ~into:acc c) p.sid_ctrs;
  acc

let kernels p = List.rev p.rev_kernels
let peak_live_bytes p = p.peak_live

let record_read p c ~dram ~name ~elem ~total =
  c.loads <- c.loads + 1;
  c.load_bytes <- c.load_bytes + elem;
  if dram then begin
    c.dram_bytes <- c.dram_bytes + elem;
    match p.cur with
    | Some (k, _) -> Hashtbl.replace k.k_footprint name total
    | None -> ()
  end

let record_write p c ~dram ~name ~elem ~total =
  c.stores <- c.stores + 1;
  c.store_bytes <- c.store_bytes + elem;
  if dram then begin
    c.dram_bytes <- c.dram_bytes + elem;
    match p.cur with
    | Some (k, _) -> Hashtbl.replace k.k_footprint name total
    | None -> ()
  end

let alloc p bytes =
  p.live_bytes <- p.live_bytes + bytes;
  if p.live_bytes > p.peak_live then p.peak_live <- p.live_bytes

let release p bytes = p.live_bytes <- p.live_bytes - bytes

let enter_kernel p (root : Stmt.t) =
  let k =
    { k_sid = root.Stmt.sid; k_label = root.Stmt.label;
      k_index = p.n_kernels; k_root = root; k_ctr = zero_counters ();
      k_parallel = 1; k_vectorized = false; k_is_lib = false;
      k_footprint = Hashtbl.create 8; k_t0 = Unix.gettimeofday ();
      k_t1 = 0.0 }
  in
  p.cur <- Some (k, totals p)

let exit_kernel p =
  match p.cur with
  | None -> invalid_arg "Profile.exit_kernel: no open kernel"
  | Some (k, snapshot) ->
    p.cur <- None;
    add_counters ~into:k.k_ctr (diff_counters (totals p) snapshot);
    (* summarize observed schedule annotations of the subtree *)
    Stmt.iter
      (fun s ->
        match s.Stmt.node with
        | Stmt.For f ->
          if f.Stmt.f_property.Stmt.vectorize then k.k_vectorized <- true;
          if f.Stmt.f_property.Stmt.parallel <> None then begin
            let c = ctr p s.Stmt.sid in
            if c.entries > 0 then
              k.k_parallel <- k.k_parallel * max 1 (c.trips / c.entries)
          end
        | Stmt.Lib_call _ -> k.k_is_lib <- true
        | _ -> ())
      k.k_root;
    k.k_t1 <- Unix.gettimeofday ();
    p.rev_kernels <- k :: p.rev_kernels;
    p.n_kernels <- p.n_kernels + 1

(* ------------------------------------------------------------------ *)
(* Worker shards: private counter sinks for parallel regions *)

type shard = {
  sh_ctrs : (int, counters) Hashtbl.t;
  sh_fp : (string, int) Hashtbl.t;
  mutable sh_live : int;
  mutable sh_peak : int;
}

let make_shard () =
  { sh_ctrs = Hashtbl.create 32; sh_fp = Hashtbl.create 8;
    sh_live = 0; sh_peak = 0 }

let shard_ctr sh sid =
  match Hashtbl.find_opt sh.sh_ctrs sid with
  | Some c -> c
  | None ->
    let c = zero_counters () in
    Hashtbl.replace sh.sh_ctrs sid c;
    c

let shard_read sh c ~dram ~name ~elem ~total =
  c.loads <- c.loads + 1;
  c.load_bytes <- c.load_bytes + elem;
  if dram then begin
    c.dram_bytes <- c.dram_bytes + elem;
    Hashtbl.replace sh.sh_fp name total
  end

let shard_write sh c ~dram ~name ~elem ~total =
  c.stores <- c.stores + 1;
  c.store_bytes <- c.store_bytes + elem;
  if dram then begin
    c.dram_bytes <- c.dram_bytes + elem;
    Hashtbl.replace sh.sh_fp name total
  end

let shard_alloc sh bytes =
  sh.sh_live <- sh.sh_live + bytes;
  if sh.sh_live > sh.sh_peak then sh.sh_peak <- sh.sh_live

let shard_release sh bytes = sh.sh_live <- sh.sh_live - bytes

let reset_counters c =
  c.loads <- 0;
  c.stores <- 0;
  c.load_bytes <- 0;
  c.store_bytes <- 0;
  c.dram_bytes <- 0;
  c.fadd <- 0;
  c.fmul <- 0;
  c.fdiv <- 0;
  c.fspecial <- 0;
  c.fother <- 0;
  c.iops <- 0;
  c.cmps <- 0;
  c.entries <- 0;
  c.trips <- 0;
  c.atomics <- 0

let merge_shard p sh =
  (* Drain in place: compiled closures hold the counter records captured
     at compile time, so the records must stay reachable through
     [sh_ctrs] — dropping the table (rather than zeroing the cells)
     would silently discard every later run's counts when the same
     compiled parallel loop executes again (e.g. a parallel loop nested
     under a demoted or sequential outer loop). *)
  Hashtbl.iter
    (fun sid c ->
      add_counters ~into:(ctr p sid) c;
      reset_counters c)
    sh.sh_ctrs;
  (match p.cur with
   | Some (k, _) ->
     Hashtbl.iter (fun n b -> Hashtbl.replace k.k_footprint n b) sh.sh_fp
   | None -> ());
  (* Region-local allocations are balanced per iteration, so the
     sequential peak over the region is the live level at entry plus the
     deepest single-worker excursion — not the sum across workers. *)
  if p.live_bytes + sh.sh_peak > p.peak_live then
    p.peak_live <- p.live_bytes + sh.sh_peak;
  p.live_bytes <- p.live_bytes + sh.sh_live;
  Hashtbl.reset sh.sh_fp;
  sh.sh_live <- 0;
  sh.sh_peak <- 0

(* ------------------------------------------------------------------ *)
(* Cross-validation *)

let sorted_footprint k =
  Hashtbl.fold (fun n b acc -> (n, b) :: acc) k.k_footprint []
  |> List.sort compare

let equal_observed a b =
  let sids tbl = Hashtbl.fold (fun sid _ acc -> sid :: acc) tbl [] in
  let all_sids =
    List.sort_uniq compare (sids a.sid_ctrs @ sids b.sid_ctrs)
  in
  List.for_all
    (fun sid -> counters_equal (stmt_counters a sid) (stmt_counters b sid))
    all_sids
  && a.peak_live = b.peak_live
  && List.length a.rev_kernels = List.length b.rev_kernels
  && List.for_all2
       (fun ka kb ->
         ka.k_sid = kb.k_sid && ka.k_label = kb.k_label
         && counters_equal ka.k_ctr kb.k_ctr
         && ka.k_parallel = kb.k_parallel
         && ka.k_vectorized = kb.k_vectorized
         && ka.k_is_lib = kb.k_is_lib
         && sorted_footprint ka = sorted_footprint kb)
       (kernels a) (kernels b)

let diff_string a b =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sids tbl = Hashtbl.fold (fun sid _ acc -> sid :: acc) tbl [] in
  let all_sids =
    List.sort_uniq compare (sids a.sid_ctrs @ sids b.sid_ctrs)
  in
  List.iter
    (fun sid ->
      let ca = stmt_counters a sid and cb = stmt_counters b sid in
      if not (counters_equal ca cb) then
        pr "sid %d:\n  a: %s\n  b: %s\n" sid (counters_to_string ca)
          (counters_to_string cb))
    all_sids;
  if a.peak_live <> b.peak_live then
    pr "peak live: a=%dB b=%dB\n" a.peak_live b.peak_live;
  let ka = kernels a and kb = kernels b in
  if List.length ka <> List.length kb then
    pr "kernel count: a=%d b=%d\n" (List.length ka) (List.length kb)
  else
    List.iter2
      (fun x y ->
        if
          x.k_sid <> y.k_sid
          || (not (counters_equal x.k_ctr y.k_ctr))
          || x.k_parallel <> y.k_parallel
          || x.k_vectorized <> y.k_vectorized
          || x.k_is_lib <> y.k_is_lib
          || sorted_footprint x <> sorted_footprint y
        then
          pr "kernel #%d: a=[sid %d par=%d %s] b=[sid %d par=%d %s]\n"
            x.k_index x.k_sid x.k_parallel
            (counters_to_string x.k_ctr)
            y.k_sid y.k_parallel
            (counters_to_string y.k_ctr))
      ka kb;
  if Buffer.length buf = 0 then "(no difference)" else Buffer.contents buf

let replay_cost (sp : Machine.spec) p : Machine.metrics =
  let m = Machine.fresh_metrics () in
  List.iter
    (fun k ->
      let fp = float_of_int (footprint_bytes k) in
      let parallel_iters, vectorized, l2 =
        if k.k_is_lib then (sp.Machine.parallelism, true, fp)
        else (k.k_parallel, k.k_vectorized, float_of_int k.k_ctr.dram_bytes)
      in
      Machine.charge_kernel sp m
        ~atomic_rmws:(float_of_int k.k_ctr.atomics)
        ~parallel_iters ~vectorized
        ~flops:(float_of_int (flops k.k_ctr))
        ~l2_bytes:l2 ~footprint_bytes:fp
        ~live_bytes:(float_of_int p.peak_live))
    (kernels p);
  m

(* ------------------------------------------------------------------ *)
(* Reporting *)

let sif n = Machine.si (float_of_int n)

let stmt_desc (s : Stmt.t) =
  match s.Stmt.node with
  | Stmt.For f -> Printf.sprintf "for %s" f.Stmt.f_iter
  | Stmt.Store st -> "store " ^ st.Stmt.s_var
  | Stmt.Reduce_to r ->
    Printf.sprintf "%s %s" r.Stmt.r_var (Types.reduce_op_to_string r.Stmt.r_op)
  | Stmt.Var_def d -> "alloc " ^ d.Stmt.d_name
  | Stmt.If _ -> "if"
  | Stmt.Assert_stmt _ -> "assert"
  | Stmt.Seq _ -> "seq"
  | Stmt.Eval _ -> "eval"
  | Stmt.Lib_call { lib; _ } -> "lib " ^ lib
  | Stmt.Microkernel { mk; _ } -> "microkernel " ^ mk
  | Stmt.Call { callee; _ } -> "call " ^ callee
  | Stmt.Nop -> "nop"

let report (fn : Stmt.func) p =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let tot = totals p in
  pr "== profile report: %s ==\n" fn.Stmt.fn_name;
  pr "observed totals: kernels=%d %s\n" p.n_kernels (counters_to_string tot);
  pr "peak live memory: %sB\n" (sif p.peak_live);
  pr "\n-- kernels (launch order) --\n";
  List.iter
    (fun k ->
      pr "  #%d [sid %d%s] %s: flops=%s loads=%s stores=%s dram=%sB \
          footprint=%sB par=%d%s%s\n"
        k.k_index k.k_sid
        (match k.k_label with Some l -> " " ^ l | None -> "")
        (stmt_desc k.k_root)
        (sif (flops k.k_ctr))
        (sif k.k_ctr.loads) (sif k.k_ctr.stores) (sif k.k_ctr.dram_bytes)
        (sif (footprint_bytes k))
        k.k_parallel
        (if k.k_vectorized then " vec" else "")
        (if k.k_is_lib then " lib" else ""))
    (kernels p);
  pr "\n-- source tree (subtree-aggregated observed counters) --\n";
  (* Seq is transparent: children print at the parent's depth.  Subtrees
     that observed nothing (never-executed branches) are skipped. *)
  let rec subtree (s : Stmt.t) : counters =
    let acc = stmt_counters p s.Stmt.sid in
    List.iter (fun c -> add_counters ~into:acc (subtree c)) (Stmt.children s);
    acc
  in
  let rec print_tree depth (s : Stmt.t) =
    match s.Stmt.node with
    | Stmt.Seq _ -> List.iter (print_tree depth) (Stmt.children s)
    | _ ->
      let sub = subtree s in
      if not (is_zero sub) then begin
        let own = stmt_counters p s.Stmt.sid in
        let trips =
          match s.Stmt.node with
          | Stmt.For _ when own.entries > 0 ->
            Printf.sprintf " trips=%d(x%d)" own.trips own.entries
          | _ -> ""
        in
        pr "%s%-24s [sid %d]%s flops=%s loads=%s stores=%s dram=%sB\n"
          (String.make (2 * depth) ' ')
          (stmt_desc s) s.Stmt.sid trips
          (sif (flops sub)) (sif sub.loads) (sif sub.stores)
          (sif sub.dram_bytes);
        List.iter (print_tree (depth + 1)) (Stmt.children s)
      end
  in
  print_tree 0 fn.Stmt.fn_body;
  (* hottest statements by own flops, with their enclosing loop path *)
  let hot =
    Hashtbl.fold (fun sid c acc -> (sid, c) :: acc) p.sid_ctrs []
    |> List.filter (fun (_, c) -> flops c > 0)
    |> List.sort (fun (_, a) (_, b) -> compare (flops b) (flops a))
  in
  (match hot with
   | [] -> ()
   | _ ->
     pr "\n-- hottest statements --\n";
     List.iteri
       (fun i (sid, c) ->
         if i < 5 then begin
           let path =
             match Stmt.path_to_sid fn.Stmt.fn_body sid with
             | Some chain ->
               chain
               |> List.filter_map (fun (st : Stmt.t) ->
                      match st.Stmt.node with
                      | Stmt.For f -> Some f.Stmt.f_iter
                      | _ -> None)
               |> String.concat "/"
             | None -> "?"
           in
           let target =
             match Stmt.find_by_id sid fn.Stmt.fn_body with
             | Some st -> stmt_desc st
             | None -> "?"
           in
           pr "  %d. %s flops  %s: %s  [sid %d]\n" (i + 1)
             (sif (flops c))
             (if path = "" then "(top)" else path)
             target sid
         end)
       hot);
  Buffer.contents buf

let vs_table ~(spec : Machine.spec) ~(predicted : Machine.metrics)
    ?(per_kernel = []) p =
  let obs = replay_cost spec p in
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fmt_val name v =
    if name = "time" then Machine.time_to_string v
    else if name = "kernels" then Printf.sprintf "%d" (int_of_float v)
    else if name = "FLOPs" || name = "atomics" then Machine.si v
    else Machine.si v ^ "B"
  in
  pr "%-12s %14s %14s %10s\n" "metric" "predicted" "observed" "pred/obs";
  List.iter2
    (fun (name, pv) (_, ov) ->
      let ratio =
        if ov = 0.0 then (if pv = 0.0 then "1.00" else "-")
        else Printf.sprintf "%.2f" (pv /. ov)
      in
      pr "%-12s %14s %14s %10s\n" name (fmt_val name pv) (fmt_val name ov)
        ratio)
    (Machine.metrics_rows predicted) (Machine.metrics_rows obs);
  if per_kernel <> [] then begin
    pr "-- per kernel (predicted vs observed time) --\n";
    List.iter
      (fun k ->
        match List.assoc_opt k.k_sid per_kernel with
        | None -> ()
        | Some pm ->
          let om = Machine.fresh_metrics () in
          let fp = float_of_int (footprint_bytes k) in
          let parallel_iters, vectorized, l2 =
            if k.k_is_lib then (spec.Machine.parallelism, true, fp)
            else
              (k.k_parallel, k.k_vectorized,
               float_of_int k.k_ctr.dram_bytes)
          in
          Machine.charge_kernel spec om
            ~atomic_rmws:(float_of_int k.k_ctr.atomics)
            ~parallel_iters ~vectorized
            ~flops:(float_of_int (flops k.k_ctr))
            ~l2_bytes:l2 ~footprint_bytes:fp ~live_bytes:0.0;
          pr "  #%d [sid %d] %-18s %14s %14s\n" k.k_index k.k_sid
            (stmt_desc k.k_root)
            (Machine.time_to_string pm.Machine.time)
            (Machine.time_to_string om.Machine.time))
      (kernels p)
  end;
  Buffer.contents buf

(* JSON string-body escaping per RFC 8259: quote, backslash, and control
   characters.  Kernel names embed user-chosen tensor/function names, so
   hostile names must not produce invalid trace files. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun k ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      let ts = (k.k_t0 -. p.t_start) *. 1e6 in
      let dur = Float.max 0.0 ((k.k_t1 -. k.k_t0) *. 1e6) in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"kernel sid%d %s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
            \"ts\":%.3f,\"dur\":%.3f,\"args\":{\"flops\":%d,\"loads\":%d,\
            \"stores\":%d,\"dram_bytes\":%d,\"atomics\":%d}}"
           k.k_sid
           (json_escape (stmt_desc k.k_root))
           ts dur (flops k.k_ctr) k.k_ctr.loads k.k_ctr.stores
           k.k_ctr.dram_bytes k.k_ctr.atomics))
    (kernels p);
  Buffer.add_string buf "]}";
  Buffer.contents buf
