(** Execution profiler: observed per-statement and per-kernel counters.

    Both executors ({!Ft_backend.Interp} and {!Ft_backend.Compile_exec})
    accept an optional [?profile] argument.  When given, every executed
    expression node bumps an operation counter classified by its root
    operator, every tensor access records loads/stores and byte traffic,
    every loop records entries and trip counts, and the host-level walk
    segments the execution into kernels — the same segmentation the
    analytic cost model ({!Ft_backend.Costmodel}) uses, so predicted and
    observed quantities are directly comparable.  {!replay_cost} prices
    the observed counters through {!Ft_machine.Machine.kernel_cost},
    making predicted-vs-observed divergence a first-class, testable
    quantity.

    Caveats, shared by design between both executors so their observed
    counters are identical:
    - [Eval] statements are not counted (the compiled executor elides
      pure expression statements entirely);
    - operator classification is purely syntactic — an [Add] over
      integer indices counts toward [fadd] just like a float add;
    - a tensor access counts as DRAM traffic iff its memory type is
      [Cpu_heap] or [Gpu_global] (device-independent, unlike the cost
      model's GPU treatment of [Cpu_stack] scratch). *)

open Ft_ir
module Machine = Ft_machine.Machine

(** Observed event counters.  [entries]/[trips] are only meaningful on
    loop statements; byte counters follow the accessed tensor's dtype. *)
type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable load_bytes : int;
  mutable store_bytes : int;
  mutable dram_bytes : int;  (** bytes moved on DRAM-resident tensors *)
  mutable fadd : int;        (** Add / Sub *)
  mutable fmul : int;
  mutable fdiv : int;
  mutable fspecial : int;    (** Pow, Sqrt, Exp, Ln, Sigmoid, Tanh *)
  mutable fother : int;      (** Min/Max/Abs/Neg/Square/Select/floor/ceil *)
  mutable iops : int;        (** integer Floor_div / Mod *)
  mutable cmps : int;        (** comparisons *)
  mutable entries : int;     (** loop entries *)
  mutable trips : int;       (** loop iterations executed *)
  mutable atomics : int;
      (** atomic RMW updates: [Reduce_to] with [r_atomic] executed *)
}

val zero_counters : unit -> counters
val copy_counters : counters -> counters

(** Total floating-point operations: fadd+fmul+fdiv+fspecial+fother. *)
val flops : counters -> int

(** Accumulate [c] into [into]. *)
val add_counters : into:counters -> counters -> unit

(** [diff_counters a b] is a fresh [a - b], fieldwise. *)
val diff_counters : counters -> counters -> counters

val counters_equal : counters -> counters -> bool
val is_zero : counters -> bool
val counters_to_string : counters -> string

(** {1 Operator classification} *)

type opclass =
  | C_add
  | C_mul
  | C_div
  | C_special
  | C_other
  | C_int
  | C_cmp
  | C_none

(** Classify an expression by its root operator (syntactic; loads,
    constants, variables, casts and logicals are [C_none]). *)
val classify : Expr.t -> opclass

val bump_class : counters -> opclass -> unit

(** Direct counting for the interpreter's hot loop (no allocation). *)
val bump_expr : counters -> Expr.t -> unit

(** Compile-time variant for the closure executor: [None] when the node
    needs no counting, so unprofiled thunks pay nothing. *)
val expr_bump : Expr.t -> (counters -> unit) option

(** +1 op for the read-modify-write combine of a [Reduce_to];
    [~atomic:true] additionally counts one atomic RMW. *)
val bump_reduce : ?atomic:bool -> counters -> Types.reduce_op -> unit

(** {1 Kernels} *)

(** One host-level kernel launch: a top-level statement outside any loop
    (the cost model's segmentation).  Counters are the subtree's share of
    the run; [k_parallel]/[k_vectorized]/[k_is_lib] summarize schedule
    annotations observed in the subtree; [k_footprint] maps each
    DRAM-resident tensor touched to its byte size. *)
type kernel = {
  k_sid : int;
  k_label : string option;
  k_index : int;                 (** launch order *)
  k_root : Stmt.t;
  k_ctr : counters;
  mutable k_parallel : int;      (** product of observed parallel extents *)
  mutable k_vectorized : bool;
  mutable k_is_lib : bool;
  k_footprint : (string, int) Hashtbl.t;
  k_t0 : float;
  mutable k_t1 : float;          (** wall-clock seconds (chrome trace) *)
}

val footprint_bytes : kernel -> int

(** {1 The profile} *)

type t

val create : unit -> t

(** Per-statement counter cell, created on first use. *)
val ctr : t -> int -> counters

(** Counters of a statement id observed so far (zero if never touched). *)
val stmt_counters : t -> int -> counters

(** Sum of all per-statement counters. *)
val totals : t -> counters

(** Kernels in launch order. *)
val kernels : t -> kernel list

val peak_live_bytes : t -> int

(** {1 Executor hooks} *)

(** Record one tensor read/write against [c]: [elem] bytes move; when
    [dram], DRAM traffic and the current kernel's footprint ([name] ->
    [total] bytes) are charged too. *)
val record_read :
  t -> counters -> dram:bool -> name:string -> elem:int -> total:int -> unit

val record_write :
  t -> counters -> dram:bool -> name:string -> elem:int -> total:int -> unit

(** Track an allocation / release of [bytes] live tensor memory. *)
val alloc : t -> int -> unit

val release : t -> int -> unit

(** Open / close a kernel rooted at the given host-level statement.
    Must be balanced; the kernel's counters are the delta of the totals
    between the two calls. *)
val enter_kernel : t -> Stmt.t -> unit

val exit_kernel : t -> unit

(** {1 Worker shards}

    A shard is a private counter sink for one worker of a parallel
    region: the worker bumps shard-local per-statement counters,
    footprint entries and alloc/release excursions with no shared
    mutable state, and the master folds every shard back into the
    profile with {!merge_shard} after joining the region — so profiling
    under parallel execution observes exactly what sequential execution
    would.  Peak-live merging assumes region-local allocations are
    balanced within each iteration (true for [Var_def] scoping), making
    the sequential peak the entry live level plus the deepest
    single-worker excursion. *)

type shard

val make_shard : unit -> shard

(** Shard-local per-statement counter cell, created on first use. *)
val shard_ctr : shard -> int -> counters

val shard_read :
  shard -> counters -> dram:bool -> name:string -> elem:int -> total:int ->
  unit

val shard_write :
  shard -> counters -> dram:bool -> name:string -> elem:int -> total:int ->
  unit

val shard_alloc : shard -> int -> unit
val shard_release : shard -> int -> unit

(** Fold a shard into the profile (counters add; footprint entries join
    the current kernel; peak live folds as described above) and reset it
    for reuse.  Must be called from the master domain, after the region
    has joined. *)
val merge_shard : t -> shard -> unit

(** {1 Cross-validation} *)

(** Structural equality of everything observed (per-statement counters,
    kernel sequence, footprints, peak memory) ignoring wall-clock times.
    This is what the differential tests compare across executors. *)
val equal_observed : t -> t -> bool

(** Human-readable description of where two profiles disagree. *)
val diff_string : t -> t -> string

(** Price the observed counters through the machine model: per kernel,
    observed FLOPs / DRAM bytes / footprint / parallelism go through
    {!Machine.charge_kernel}.  The analytic model's counterpart is
    {!Ft_backend.Costmodel.estimate} — divergence between the two is a
    cost-model bug or a schedule the model prices differently. *)
val replay_cost : Machine.spec -> t -> Machine.metrics

(** {1 Reporting} *)

(** Hierarchical per-loop report: the function's statement tree with
    subtree-aggregated observed counters, kernel launches, and the
    hottest statements with their enclosing loop paths. *)
val report : Stmt.func -> t -> string

(** Predicted-vs-observed table.  [predicted] comes from the analytic
    cost model; the observed column prices this profile via
    {!replay_cost}.  [per_kernel] optionally adds per-kernel rows
    (predicted metrics keyed by kernel-root sid). *)
val vs_table :
  spec:Machine.spec ->
  predicted:Machine.metrics ->
  ?per_kernel:(int * Machine.metrics) list ->
  t ->
  string

(** JSON string-body escaping per RFC 8259 (quote, backslash, control
    characters) — applied to every interpolated name in
    {!to_chrome_json}. *)
val json_escape : string -> string

(** chrome://tracing -compatible JSON of the kernel timeline. *)
val to_chrome_json : t -> string
