(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the abstract machine, plus Bechamel
   wall-clock micro-benchmarks of the actual OCaml execution.

   Usage: main.exe
     [fig16a|fig16b|fig17|fig18|table2|ablation|profile|wallclock
      |wallclock-json|wallclock-check|overload|all]

   wallclock-json writes BENCH_wallclock.json (seeded inputs, medians,
   host metadata) for the four runnable workloads; wallclock-check
   re-measures the compiled-seq and served (serving-layer cache-hit)
   rows and exits 1 if any regresses more than 25% against that
   committed baseline.  *)

open Ft_ir
module E = Ft_workloads.Experiments
module Tables = Ft_workloads.Tables
module Machine = Ft_machine.Machine
module Grad = Ft_ad.Grad
module Interp = Ft_backend.Interp
module Sub = Ft_workloads.Subdivnet
module Lf = Ft_workloads.Longformer
module Sr = Ft_workloads.Softras
module Tvm = Ft_workloads.Tvmlike
module Fw = Ft_baselines.Fw
module Tensor = Ft_runtime.Tensor
module Serve = Ft_serve.Serve

let scale = E.paper_scale

let print_table ~title ~frameworks ~grad () =
  print_string
    (Tables.render_table ~title ~frameworks
       ~cell_of:(fun device w f ->
         if List.mem f (E.frameworks_for w) then E.cell ~grad ~device ~scale f w
         else E.Not_reported)
       ())

(* ------------------------------------------------------------- *)

let fig16a () =
  print_table
    ~title:"Fig. 16(a): end-to-end time WITHOUT differentiation"
    ~frameworks:
      [ E.Freetensor; E.Torchlike; E.Jaxlike; E.Tvmlike; E.Julialike;
        E.Dgllike ]
    ~grad:false ()

let fig16b () =
  print_table
    ~title:
      "Fig. 16(b): end-to-end time WITH differentiation (forward + backward)"
    ~frameworks:[ E.Freetensor; E.Torchlike; E.Jaxlike; E.Julialike ]
    ~grad:true ()

let fig17 () =
  Printf.printf "\n== Fig. 17: speedup analysis of SubdivNet on GPU ==\n";
  let ft_cell = E.cell ~device:Types.Gpu ~scale E.Freetensor E.Subdiv in
  let bl_cell = E.cell ~device:Types.Gpu ~scale E.Torchlike E.Subdiv in
  match ft_cell, bl_cell with
  | E.Time ft, E.Time bl ->
    let pct a b = 100.0 *. a /. b in
    Printf.printf "%-22s %14s %14s %10s\n" "metric" "FreeTensor"
      "best baseline" "FT/base";
    Printf.printf "%-22s %14d %14d %9.1f%%\n" "kernel invocations"
      ft.Machine.kernels bl.Machine.kernels
      (pct
         (float_of_int ft.Machine.kernels)
         (float_of_int bl.Machine.kernels));
    Printf.printf "%-22s %13sB %13sB %9.2f%%\n" "DRAM access"
      (Machine.si ft.Machine.dram_bytes)
      (Machine.si bl.Machine.dram_bytes)
      (pct ft.Machine.dram_bytes bl.Machine.dram_bytes);
    Printf.printf "%-22s %13sB %13sB %9.2f%%\n" "L2 access"
      (Machine.si ft.Machine.l2_bytes)
      (Machine.si bl.Machine.l2_bytes)
      (pct ft.Machine.l2_bytes bl.Machine.l2_bytes);
    Printf.printf "%-22s %14s %14s %9.2f%%\n" "FLOP"
      (Machine.si ft.Machine.flops)
      (Machine.si bl.Machine.flops)
      (pct ft.Machine.flops bl.Machine.flops)
  | _ -> Printf.printf "unexpected OOM/ICE in Fig. 17 cells\n"

let fig18 () =
  Printf.printf
    "\n== Fig. 18: selective intermediate tensor materialization ==\n";
  Printf.printf "%-12s %-4s %22s %22s %8s\n" "workload" "dev" "FT(-) fwd+bwd"
    "FT(+) fwd+bwd" "speedup";
  List.iter
    (fun w ->
      List.iter
        (fun device ->
          let show mode = E.ft_grad_breakdown ~mode ~device ~scale w in
          let fmt = function
            | Ok (f, b) ->
              Printf.sprintf "%s + %s"
                (Machine.time_to_string f)
                (Machine.time_to_string b)
            | Error e -> e
          in
          let minus = show Grad.Materialize_all in
          let plus = show Grad.Selective in
          Printf.printf "%-12s %-4s %22s %22s" (E.workload_name w)
            (Types.device_to_string device)
            (fmt minus) (fmt plus);
          (match minus, plus with
           | Ok (f1, b1), Ok (f2, b2) ->
             Printf.printf " %7.2fx" ((f1 +. b1) /. (f2 +. b2))
           | _ -> Printf.printf " %8s" "-");
          print_newline ())
        [ Types.Cpu; Types.Gpu ])
    [ E.Subdiv; E.Longf; E.Softr ]

let ablation () =
  Printf.printf
    "\n== Ablation: contribution of each auto-scheduling pass ==\n";
  Printf.printf
    "(estimated slowdown when the pass is disabled; 1.00x = no effect)\n";
  Printf.printf "%-12s %-4s" "workload" "dev";
  List.iter
    (fun p -> Printf.printf " %16s" (Ft_auto.Auto.pass_name p))
    Ft_auto.Auto.all_passes;
  print_newline ();
  List.iter
    (fun w ->
      List.iter
        (fun device ->
          let rows, full = E.ablation ~device ~scale w in
          Printf.printf "%-12s %-4s" (E.workload_name w)
            (Types.device_to_string device);
          List.iter
            (fun (_, t) -> Printf.printf " %15.2fx" (t /. full))
            rows;
          print_newline ())
        [ Types.Cpu; Types.Gpu ])
    E.all_workloads

let table2 () =
  Printf.printf "\n== Table 2: compiling time, FreeTensor vs TVM ==\n";
  Printf.printf "%-16s %14s %28s\n" "case" "FreeTensor" "TVM (rounds x each)";
  List.iter
    (fun w ->
      List.iter
        (fun device ->
          let ct = E.compile_times ~device ~scale w in
          let tvm_str =
            match ct.E.tvm with
            | Ok (rounds, spr) ->
              Printf.sprintf "%s (%d x %s)"
                (Machine.time_to_string (float_of_int rounds *. spr))
                rounds
                (Machine.time_to_string spr)
            | Error e -> e
          in
          Printf.printf "%-16s %14s %28s\n"
            (Printf.sprintf "%s %s" (E.workload_name w)
               (String.uppercase_ascii (Types.device_to_string device)))
            (Machine.time_to_string ct.E.ft_seconds)
            tvm_str)
        [ Types.Cpu; Types.Gpu ])
    E.all_workloads

(* ------------------------------------------------------------- *)
(* Predicted-vs-observed profiles: run every workload under both
   executors at small scale (execution is real, so paper scale would
   take hours under the interpreter), cross-check the observed counters
   between the executors, and price them against the cost model. *)

let profile () =
  List.iter
    (fun w ->
      List.iter
        (fun device ->
          print_newline ();
          print_string
            (Tables.profile_workload ~device E.small_scale w))
        [ Types.Cpu; Types.Gpu ])
    E.all_workloads

(* ------------------------------------------------------------- *)
(* Bechamel wall-clock benchmarks of the real OCaml execution, at small
   scale: the FreeTensor program under the reference interpreter vs the
   operator-chain baseline doing the same numeric work. *)

let wallclock () =
  let open Bechamel in
  (* SubdivNet *)
  let sub_c = Sub.default in
  let e, adj = Sub.gen_inputs sub_c in
  let sub_fn = Sub.ft_func sub_c in
  let sub_y =
    Tensor.zeros Types.F32 [| sub_c.Sub.n_faces; sub_c.Sub.in_feats |]
  in
  let t_sub_ft =
    Test.make ~name:"subdivnet/freetensor-interp"
      (Staged.stage (fun () ->
           Interp.run_func sub_fn [ ("e", e); ("adj", adj); ("y", sub_y) ]))
  in
  let t_sub_bl =
    Test.make ~name:"subdivnet/operator-baseline"
      (Staged.stage (fun () ->
           let fw = Fw.create Types.Cpu in
           ignore (Sub.baseline fw e adj)))
  in
  let sub_compiled = Ft_backend.Compile_exec.compile sub_fn in
  let t_sub_cc =
    Test.make ~name:"subdivnet/freetensor-compiled"
      (Staged.stage (fun () ->
           sub_compiled.Ft_backend.Compile_exec.cd_run
             [ ("e", e); ("adj", adj); ("y", sub_y) ]
             []))
  in
  (* Longformer *)
  let lf_c = { Lf.seq_len = 128; feat_len = 16; w = 8 } in
  let q, k, v = Lf.gen_inputs lf_c in
  let lf_fn = Lf.ft_func lf_c in
  let lf_y = Tensor.zeros Types.F32 [| lf_c.Lf.seq_len; lf_c.Lf.feat_len |] in
  let t_lf_ft =
    Test.make ~name:"longformer/freetensor-interp"
      (Staged.stage (fun () ->
           Interp.run_func lf_fn [ ("Q", q); ("K", k); ("V", v); ("Y", lf_y) ]))
  in
  let t_lf_bl =
    Test.make ~name:"longformer/operator-baseline"
      (Staged.stage (fun () ->
           let fw = Fw.create Types.Cpu in
           ignore (Lf.baseline fw q k v ~w:lf_c.Lf.w)))
  in
  let lf_compiled = Ft_backend.Compile_exec.compile lf_fn in
  let t_lf_cc =
    Test.make ~name:"longformer/freetensor-compiled"
      (Staged.stage (fun () ->
           lf_compiled.Ft_backend.Compile_exec.cd_run
             [ ("Q", q); ("K", k); ("V", v); ("Y", lf_y) ]
             []))
  in
  let sub_par =
    Ft_backend.Compile_exec.compile ~parallel:true
      (Ft_auto.Auto.run ~device:Types.Cpu sub_fn)
  in
  let t_sub_par =
    Test.make ~name:"subdivnet/freetensor-compiled-par"
      (Staged.stage (fun () ->
           sub_par.Ft_backend.Compile_exec.cd_run
             [ ("e", e); ("adj", adj); ("y", sub_y) ]
             []))
  in
  let lf_par =
    Ft_backend.Compile_exec.compile ~parallel:true
      (Ft_auto.Auto.run ~device:Types.Cpu lf_fn)
  in
  let t_lf_par =
    Test.make ~name:"longformer/freetensor-compiled-par"
      (Staged.stage (fun () ->
           lf_par.Ft_backend.Compile_exec.cd_run
             [ ("Q", q); ("K", k); ("V", v); ("Y", lf_y) ]
             []))
  in
  let tests =
    Test.make_grouped ~name:"wallclock"
      [ t_sub_ft; t_sub_cc; t_sub_par; t_sub_bl; t_lf_ft; t_lf_cc; t_lf_par;
        t_lf_bl ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf
    "\n== Wall-clock (Bechamel, reference interpreter, small scale) ==\n";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-42s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-42s %14s\n" name "n/a")
    (List.sort compare rows)

(* ------------------------------------------------------------- *)
(* wallclock-json: machine-readable medians for the three in-process
   executors plus a fault-free supervised run, a lowering-disabled
   compile, and a steady-state serving-layer request (cache hit) on each
   of the four runnable workloads, written to BENCH_wallclock.json.  All rows of a workload run the same CPU-auto-
   scheduled program (so the parallel executor sees the scheduler's
   OpenMP annotations and each comparison isolates exactly one thing:
   the execution backend, the supervision hooks, or — via the
   "compiled-seq-nolower" row, compiled with FT_LOWER=0 — the IR
   lowering pipeline).  Inputs are the workloads' deterministic seeded
   generators, so the numbers are reproducible up to host noise. *)

let median_ns f =
  f () (* warm-up *);
  let samples = ref [] in
  let t_begin = Unix.gettimeofday () in
  let n = ref 0 in
  while !n < 5 || (Unix.gettimeofday () -. t_begin < 0.3 && !n < 200) do
    let t0 = Unix.gettimeofday () in
    f ();
    samples := (Unix.gettimeofday () -. t0) :: !samples;
    incr n
  done;
  let a = Array.of_list !samples in
  Array.sort compare a;
  a.(Array.length a / 2) *. 1e9

(* The four runnable wall-clock workloads: CPU-auto-scheduled function
   plus its seeded argument binding (outputs freshly allocated). *)
let wallclock_cases () : (string * Stmt.func * (string * Tensor.t) list) list
    =
  let sub_c = Sub.default in
  let e, adj = Sub.gen_inputs sub_c in
  let sub_fn = Ft_auto.Auto.run ~device:Types.Cpu (Sub.ft_func sub_c) in
  let sub_y =
    Tensor.zeros Types.F32 [| sub_c.Sub.n_faces; sub_c.Sub.in_feats |]
  in
  let lf_c = { Lf.seq_len = 128; feat_len = 16; w = 8 } in
  let q, k, v = Lf.gen_inputs lf_c in
  let lf_fn = Ft_auto.Auto.run ~device:Types.Cpu (Lf.ft_func lf_c) in
  let lf_y = Tensor.zeros Types.F32 [| lf_c.Lf.seq_len; lf_c.Lf.feat_len |] in
  let sr_c = Sr.default in
  let cx, cy, r = Sr.gen_inputs sr_c in
  let sr_fn = Ft_auto.Auto.run ~device:Types.Cpu (Sr.ft_func sr_c) in
  let img = Tensor.zeros Types.F32 [| sr_c.Sr.img; sr_c.Sr.img |] in
  let tvm_c = Tvm.mm_default in
  let a, b = Tvm.mm_inputs tvm_c in
  let tvm_fn = Ft_auto.Auto.run ~device:Types.Cpu (Tvm.mm_func tvm_c) in
  let c_out = Tensor.zeros Types.F32 [| tvm_c.Tvm.mm_m; tvm_c.Tvm.mm_n |] in
  [ ("subdivnet", sub_fn, [ ("e", e); ("adj", adj); ("y", sub_y) ]);
    ("longformer", lf_fn, [ ("Q", q); ("K", k); ("V", v); ("Y", lf_y) ]);
    ("softras", sr_fn, [ ("cx", cx); ("cy", cy); ("r", r); ("img", img) ]);
    ("tvmlike", tvm_fn, [ ("A", a); ("B", b); ("C", c_out) ]) ]

let all_wallclock_workloads = [ "subdivnet"; "longformer"; "softras"; "tvmlike" ]

(* Compile with the IR lowering pipeline off (FT_LOWER is read once at
   compile entry, so scoping the environment variable around the call is
   race-free in this single-threaded harness). *)
let compile_nolower fn =
  Unix.putenv "FT_LOWER" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "FT_LOWER" "1")
    (fun () -> Ft_backend.Compile_exec.compile fn)

(* Steady-state request through the serving layer: cache primed, so the
   row prices a hit (key lookup + guard snapshots + supervised exec),
   not a compile. *)
let serve_request srv fn args =
  ignore (Serve.serve srv (Serve.request ~id:0 fn args))

let measure_rows () =
  let module Cexec = Ft_backend.Compile_exec in
  List.concat_map
    (fun (wname, fn, args) ->
      let seq = Cexec.compile fn in
      let nolower = compile_nolower fn in
      let par = Cexec.compile ~parallel:true fn in
      let sv =
        Ft_backend.Supervisor.prepare
          ~policy:Ft_backend.Supervisor.default_policy fn
      in
      let srv =
        Serve.create ~policy:Ft_backend.Supervisor.default_policy ()
      in
      serve_request srv fn args;
      [ (wname, "interp", median_ns (fun () -> Interp.run_func fn args));
        (wname, "compiled-seq",
         median_ns (fun () -> seq.Cexec.cd_run args []));
        (wname, "compiled-seq-nolower",
         median_ns (fun () -> nolower.Cexec.cd_run args []));
        (wname, "compiled-par",
         median_ns (fun () -> par.Cexec.cd_run args []));
        (wname, "supervised",
         median_ns (fun () -> ignore (Ft_backend.Supervisor.exec sv args)));
        (wname, "served",
         median_ns (fun () -> serve_request srv fn args)) ])
    (wallclock_cases ())

let wallclock_json () =
  let rows = measure_rows () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"hostname\": %S,\n" (Unix.gethostname ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"os\": %S,\n" Sys.os_type);
  Buffer.add_string buf
    (Printf.sprintf "  \"ocaml\": %S,\n" Sys.ocaml_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n" (Machine.host_cores ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"num_domains\": %d,\n"
       (Ft_backend.Exec_par.num_domains ()));
  Buffer.add_string buf "  \"results\": [\n";
  List.iteri
    (fun i (wname, ex, ns) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"workload\": %S, \"executor\": %S, \"median_ns\": %.0f }%s\n"
           wname ex ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_wallclock.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\n== Wall-clock medians (BENCH_wallclock.json) ==\n";
  Printf.printf "(%d configured domains on %d host cores)\n"
    (Ft_backend.Exec_par.num_domains ())
    (Machine.host_cores ());
  List.iter
    (fun (wname, ex, ns) ->
      Printf.printf "%-12s %-20s %14.0f ns/run\n" wname ex ns)
    rows;
  List.iter
    (fun wname ->
      let find ex =
        List.find_map
          (fun (w, e, ns) -> if w = wname && e = ex then Some ns else None)
          rows
      in
      (match (find "compiled-seq-nolower", find "compiled-seq") with
       | Some no, Some yes ->
         Printf.printf "%-12s lowering-pipeline speedup: %.2fx\n" wname
           (no /. yes)
       | _ -> ());
      (match (find "compiled-seq", find "compiled-par") with
       | Some s, Some p ->
         Printf.printf "%-12s parallel speedup over sequential: %.2fx\n"
           wname (s /. p)
       | _ -> ());
      (* fault-free supervision cost over its primary backend *)
      (match (find "compiled-par", find "supervised") with
       | Some p, Some sv ->
         Printf.printf "%-12s supervised overhead over compiled-par: %.2fx\n"
           wname (sv /. p)
       | _ -> ());
      (* serving-layer cost (cache hit path) over bare supervision *)
      match (find "supervised", find "served") with
      | Some sv, Some sr ->
        Printf.printf "%-12s serving overhead over supervised: %.2fx\n"
          wname (sr /. sv)
      | _ -> ())
    all_wallclock_workloads

(* ------------------------------------------------------------- *)
(* wallclock-check: CI regression gate.  Parse the committed
   BENCH_wallclock.json baseline (the writer above is the only producer,
   so a line-oriented scan is enough — no JSON dependency), re-measure
   the compiled-seq and served (cache-hit serving path) medians, and
   fail when any workload regresses more than 25% against its
   baseline. *)

let parse_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         Scanf.sscanf line
           " { \"workload\": %S, \"executor\": %S, \"median_ns\": %f"
           (fun w e ns -> (w, e, ns))
       with
       | row -> rows := row :: !rows
       | exception Scanf.Scan_failure _ | exception End_of_file ->
         (* End_of_file from sscanf = the line ran out mid-pattern *)
         ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let wallclock_check () =
  let path = "BENCH_wallclock.json" in
  if not (Sys.file_exists path) then begin
    Printf.eprintf
      "wallclock-check: %s not found; run `bench wallclock-json` and \
       commit it first\n"
      path;
    exit 1
  end;
  let baseline = parse_baseline path in
  let module Cexec = Ft_backend.Compile_exec in
  let fresh =
    List.concat_map
      (fun (wname, fn, args) ->
        let seq = Cexec.compile fn in
        let srv =
          Serve.create ~policy:Ft_backend.Supervisor.default_policy ()
        in
        serve_request srv fn args;
        [ (wname, "compiled-seq",
           median_ns (fun () -> seq.Cexec.cd_run args []));
          (wname, "served",
           median_ns (fun () -> serve_request srv fn args)) ])
      (wallclock_cases ())
  in
  Printf.printf
    "== wallclock-check: compiled-seq + served vs committed baseline ==\n";
  let failed = ref [] in
  List.iter
    (fun (wname, ex, ns) ->
      let row = Printf.sprintf "%s/%s" wname ex in
      match
        List.find_map
          (fun (w, e, b) -> if w = wname && e = ex then Some b else None)
          baseline
      with
      | None ->
        Printf.printf "%-24s %14.0f ns/run  (no baseline row — skipped)\n"
          row ns
      | Some base ->
        let ratio = ns /. base in
        Printf.printf "%-24s %14.0f ns/run  baseline %14.0f  ratio %.2fx%s\n"
          row ns base ratio
          (if ratio > 1.25 then "  REGRESSION" else "");
        if ratio > 1.25 then failed := row :: !failed)
    fresh;
  if !failed <> [] then begin
    Printf.eprintf "wallclock-check: regressed >25%% on: %s\n"
      (String.concat ", " (List.rev !failed));
    exit 1
  end;
  print_endline "wallclock-check: ok"

(* overload: offered load vs goodput / shed rate / p99 / deadline misses
   through the serving layer in virtual time (timeline advances by the
   cost model's service estimate, so the sweep is deterministic and the
   x-axis is load relative to modeled saturation).  Default deadlines
   (slack x modeled service) and queue watermarks are active: past
   saturation the server sheds instead of building unbounded queues, so
   goodput plateaus and the p99 of served requests stays bounded. *)
let overload () =
  Printf.printf
    "\n== Overload sweep: serving layer, virtual time, 200 requests ==\n";
  Printf.printf "%-12s %6s %12s %12s %8s %10s %8s %6s\n" "workload" "load"
    "offered/s" "goodput/s" "shed" "p99-ms" "dl-miss" "adm/dl";
  List.iter
    (fun (wname, fn, args) ->
      let policy = Ft_backend.Supervisor.default_policy in
      List.iter
        (fun mult ->
          let ov =
            { Serve.default_overload with
              Serve.ov_queue_high = 64;
              ov_queue_low = 16 }
          in
          let srv = Serve.create ~overload:ov ~policy () in
          let est = Serve.modeled_service srv fn in
          let est = if est > 0.0 then est else 1e-6 in
          let rate = mult /. est in
          let cfg =
            Serve.soak_cfg ~virtual_time:true ~seed:42 ~requests:200
              ~rate ~batch:8 ()
          in
          let r =
            Serve.soak srv ~cfg
              ~make_request:(fun j -> Serve.request ~id:j fn args)
          in
          let shed = r.Serve.sk_shed_admission + r.Serve.sk_shed_deadline in
          Printf.printf
            "%-12s %5.2fx %12.0f %12.0f %7.1f%% %10.4f %8d %3d/%d\n" wname
            mult rate r.Serve.sk_throughput_rps
            (100.0 *. float_of_int shed /. 200.0)
            r.Serve.sk_p99_ms r.Serve.sk_deadline_miss
            r.Serve.sk_shed_admission r.Serve.sk_shed_deadline)
        [ 0.5; 1.0; 2.0; 4.0; 8.0 ])
    (wallclock_cases ())

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Unix.gettimeofday () in
  (match which with
   | "fig16a" -> fig16a ()
   | "fig16b" -> fig16b ()
   | "fig17" -> fig17 ()
   | "fig18" -> fig18 ()
   | "table2" -> table2 ()
   | "ablation" -> ablation ()
   | "profile" -> profile ()
   | "wallclock" -> wallclock ()
   | "wallclock-json" -> wallclock_json ()
   | "wallclock-check" -> wallclock_check ()
   | "overload" -> overload ()
   | "all" | _ ->
     fig16a ();
     fig16b ();
     fig17 ();
     fig18 ();
     table2 ();
     ablation ();
     profile ();
     wallclock ();
     wallclock_json ());
  Printf.printf "\n(total bench time: %.1f s)\n" (Unix.gettimeofday () -. t0)
