(* ftc — the FreeTensor compiler driver.

   Subcommands:
     ftc show <workload>                print the free-form program
     ftc schedule <workload> [-d dev]   print the auto-scheduled program
     ftc codegen <workload> [-d dev]    print generated OpenMP C / CUDA
     ftc grad <workload> [--all]        print forward+backward ASTs
     ftc estimate <workload> [-d dev]   abstract-machine cost estimate
     ftc run <workload> [-x exec]       execute and check vs reference
                                        (interp | compiled | parallel)
     ftc profile <workload> [-d dev]    execute under both executors with
                                        observed counters, cross-checked
                                        against the cost model
     ftc check <workload> [-d dev]      static race report for every
                                        parallel-annotated loop; exits 1
                                        if any loop is Racy
     ftc guard <workload>               static bounds-prover report, then
                                        guarded execution under both
                                        executors; exits 1 on any fault
     ftc lower <workload>               run the IR lowering pipeline
             [--dump-after PASS]        standalone, dump IR between
             [--dump-all] [--check]     stages, count blockized nests;
                                        --check verifies the lowered
                                        program bitwise under the interp
     ftc soak <workload> [--seed N]     drive the workload through the
             [--faults K] [--requests R]  execution supervisor under
                                        randomized fault plans; print an
                                        availability/degradation report
     ftc serve <workload> [--seed N]    seeded open-loop load through the
             [--requests R] [--rate F]  multi-tenant serving layer
             [--batch B] [--faults K]   (artifact cache + batching);
             [--guard] [--budget BYTES] report throughput, p50/p99,
                                        cache-hit-rate, batch histogram;
                                        gates on availability, hit-rate,
                                        recompiles and bitwise identity
     ftc litmus [--depth D] [--stmts S] exhaustively enumerate small
             [--sched-len K] [--budget N] programs x schedule sequences,
                                        dedup by canonical hash, and
                                        differentially verify every pair;
                                        exits 1 on any mismatch or
                                        soundness violation

   Exit codes are uniform across subcommands: 0 = success, 1 = fault
   (structured diagnostic on stderr), 2 = usage error. *)

open Freetensor
open Cmdliner

(* Unified fault handling: every subcommand body runs under [guarded],
   which routes any fault — structured diagnostics and raw executor
   errors alike — to stderr and exits 1.  Usage errors exit 2 (set via
   [~term_err] below); success is 0. *)
exception Cli_fault of string

let faultf fmt = Printf.ksprintf (fun s -> raise (Cli_fault s)) fmt

let guarded (f : unit -> unit) : unit =
  let fail msg =
    Printf.eprintf "ftc: fault: %s\n" msg;
    exit 1
  in
  try f () with
  | Cli_fault m -> fail m
  | Diag.Diag_error d -> fail (Diag.to_string d)
  | Interp.Interp_error m | Compile_exec.Exec_error m -> fail m
  | Interp.Race_detected m -> fail m
  | Tensor.Fault flt -> fail (Tensor.fault_to_string flt)
module Sub = Ft_workloads.Subdivnet
module Lf = Ft_workloads.Longformer
module Sr = Ft_workloads.Softras
module Gat = Ft_workloads.Gat
module Tvm = Ft_workloads.Tvmlike

type wl =
  | W_subdivnet
  | W_longformer
  | W_softras
  | W_gat
  | W_tvmlike

let wl_conv =
  Arg.enum
    [ ("subdivnet", W_subdivnet); ("longformer", W_longformer);
      ("softras", W_softras); ("gat", W_gat); ("tvmlike", W_tvmlike) ]

let func_of = function
  | W_subdivnet -> Sub.ft_func Sub.default
  | W_longformer -> Lf.ft_func Lf.default
  | W_softras -> Sr.ft_func Sr.default
  | W_gat ->
    let _, _, n_edges = Gat.gen_graph Gat.default in
    Gat.ft_func Gat.default ~n_edges
  | W_tvmlike -> Tvm.mm_func Tvm.mm_default

let device_conv = Arg.enum [ ("cpu", Types.Cpu); ("gpu", Types.Gpu) ]

let wl_arg =
  Arg.(
    required
    & pos 0 (some wl_conv) None
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "One of subdivnet, longformer, softras, gat, tvmlike (the \
           runnable dense-matmul operator).")

let device_arg =
  Arg.(
    value
    & opt device_conv Types.Cpu
    & info [ "d"; "device" ] ~docv:"DEVICE" ~doc:"Target device (cpu|gpu).")

let show_cmd =
  let run w = print_string (Printer.func_to_string (func_of w)) in
  Cmd.v (Cmd.info "show" ~doc:"Print the free-form program")
    Term.(const run $ wl_arg)

let schedule_cmd =
  let run w device =
    let fn = Auto.run ~device (func_of w) in
    print_string (Printer.func_to_string fn)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print the auto-scheduled program")
    Term.(const run $ wl_arg $ device_arg)

let codegen_cmd =
  let run w device =
    let c = Compile.build ~device (func_of w) in
    print_string c.Compile.c_source
  in
  Cmd.v
    (Cmd.info "codegen" ~doc:"Print generated OpenMP C or CUDA source")
    Term.(const run $ wl_arg $ device_arg)

let grad_cmd =
  let run w materialize_all =
    let mode =
      if materialize_all then Grad.Materialize_all else Grad.Selective
    in
    let g = Grad.grad ~mode (func_of w) in
    print_endline "==== instrumented forward ====";
    print_string (Printer.func_to_string g.Grad.forward);
    print_endline "\n==== backward ====";
    print_string (Printer.func_to_string g.Grad.backward);
    Printf.printf "\n%d tape(s); %d state(s) recomputed\n"
      (List.length g.Grad.tapes)
      (List.length g.Grad.recomputed)
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Materialize every intermediate (the FT(-) of Fig. 18).")
  in
  Cmd.v
    (Cmd.info "grad" ~doc:"Differentiate and print the gradient program")
    Term.(const run $ wl_arg $ all_arg)

let estimate_cmd =
  let run w device =
    let c = Compile.build ~device (func_of w) in
    let m = Compile.estimate c in
    Printf.printf "%s\n" (Machine.metrics_to_string m)
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Cost estimate on the abstract machine")
    Term.(const run $ wl_arg $ device_arg)

let exec_conv =
  Arg.enum
    [ ("interp", `Interp); ("compiled", `Compiled); ("parallel", `Parallel) ]

let exec_arg =
  Arg.(
    value
    & opt exec_conv `Interp
    & info [ "x"; "executor" ] ~docv:"EXECUTOR"
        ~doc:
          "Execution backend: $(b,interp) (reference interpreter), \
           $(b,compiled) (closure-compiling executor), or $(b,parallel) \
           (CPU-auto-scheduled program on the compiled executor with \
           OpenMP-annotated loops running on the domain pool; pool size \
           honors FT_NUM_DOMAINS).")

(* One concrete instance of a workload: the function, its argument
   binding (with freshly allocated outputs) and a closure computing
   max |FT - reference| over the outputs after a run. *)
let workload_case w :
    string * Stmt.func * (string * Tensor.t) list * (unit -> float) =
  match w with
  | W_subdivnet ->
    let c = Sub.default in
    let e, adj = Sub.gen_inputs c in
    let y = Tensor.zeros Types.F32 [| c.Sub.n_faces; c.Sub.in_feats |] in
    ( "subdivnet", Sub.ft_func c,
      [ ("e", e); ("adj", adj); ("y", y) ],
      fun () -> Tensor.max_abs_diff y (Sub.reference e adj) )
  | W_longformer ->
    let c = Lf.default in
    let q, k, v = Lf.gen_inputs c in
    let y = Tensor.zeros Types.F32 [| c.Lf.seq_len; c.Lf.feat_len |] in
    ( "longformer", Lf.ft_func c,
      [ ("Q", q); ("K", k); ("V", v); ("Y", y) ],
      fun () -> Tensor.max_abs_diff y (Lf.reference q k v ~w:c.Lf.w) )
  | W_softras ->
    let c = Sr.default in
    let cx, cy, r = Sr.gen_inputs c in
    let img = Tensor.zeros Types.F32 [| c.Sr.img; c.Sr.img |] in
    ( "softras", Sr.ft_func c,
      [ ("cx", cx); ("cy", cy); ("r", r); ("img", img) ],
      fun () ->
        Tensor.max_abs_diff img
          (Sr.reference cx cy r ~img:c.Sr.img ~sigma:c.Sr.sigma) )
  | W_gat ->
    let c = Gat.default in
    let rowptr, colidx, n_edges = Gat.gen_graph c in
    let x, wt, a1, a2 = Gat.gen_inputs c in
    let out = Tensor.zeros Types.F32 [| c.Gat.n_nodes; c.Gat.out_feats |] in
    ( "gat", Gat.ft_func c ~n_edges,
      [ ("x", x); ("w", wt); ("a1", a1); ("a2", a2); ("rowptr", rowptr);
        ("colidx", colidx); ("out", out) ],
      fun () -> Tensor.max_abs_diff out (Gat.reference x wt a1 a2 rowptr colidx)
    )
  | W_tvmlike ->
    let c = Tvm.mm_default in
    let a, b = Tvm.mm_inputs c in
    let out = Tensor.zeros Types.F32 [| c.Tvm.mm_m; c.Tvm.mm_n |] in
    ( "tvmlike", Tvm.mm_func c,
      [ ("A", a); ("B", b); ("C", out) ],
      fun () -> Tensor.max_abs_diff out (Tvm.mm_reference a b) )

let run_cmd =
  let run w exec =
    let name, fn, args, diff = workload_case w in
    (match exec with
     | `Interp -> Interp.run_func fn args
     | `Compiled -> Compile_exec.run_func fn args
     | `Parallel ->
       Compile_exec.run_func ~parallel:true (Auto.run ~device:Types.Cpu fn)
         args);
    Printf.printf "%s: max |FT - reference| = %g\n" name (diff ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute the workload and compare to reference")
    Term.(const run $ wl_arg $ exec_arg)

let profile_cmd =
  let run w device =
    guarded (fun () ->
        let e_wl =
          match w with
          | W_subdivnet -> Ft_workloads.Experiments.Subdiv
          | W_longformer -> Ft_workloads.Experiments.Longf
          | W_softras -> Ft_workloads.Experiments.Softr
          | W_gat -> Ft_workloads.Experiments.Gatw
          | W_tvmlike ->
            faultf
              "profile: tvmlike is a wall-clock workload with no paper \
               experiment entry; use `ftc run tvmlike` or `ftc lower \
               tvmlike`"
        in
        print_string
          (Ft_workloads.Tables.profile_workload ~device
             Ft_workloads.Experiments.small_scale e_wl))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Execute under both executors with observed per-kernel counters, \
          cross-checked against each other and the analytic cost model")
    Term.(const run $ wl_arg $ device_arg)

let check_cmd =
  let run w device =
    guarded (fun () ->
        let fn = Auto.run ~device (func_of w) in
        print_string (Race.func_report fn);
        if Race.has_racy (Race.check_func fn) then
          faultf "race check: racy parallel loop(s) in %s"
            fn.Stmt.fn_name)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Race-check the auto-scheduled program: print the polyhedral \
          verifier's verdict for every parallel-annotated loop and exit \
          with status 1 if any loop is Racy")
    Term.(const run $ wl_arg $ device_arg)

let guard_cmd =
  let run w =
    guarded (fun () ->
        let _, fn, _, _ = workload_case w in
        print_string (Boundcheck.func_report fn);
        print_newline ();
        let _, fn_i, args_i, diff_i = workload_case w in
        Interp.run_func ~guard:true fn_i args_i;
        Printf.printf "interp (guarded): max |FT - reference| = %g\n"
          (diff_i ());
        let _, fn_c, args_c, diff_c = workload_case w in
        let cd = Compile_exec.compile ~guard:true fn_c in
        cd.Compile_exec.cd_run args_c [];
        Printf.printf "compiled (guarded): max |FT - reference| = %g\n"
          (diff_c ());
        match cd.Compile_exec.cd_guard with
        | Some g ->
          Printf.printf
            "guard stats: %d access site(s), %d elided (statically \
             proved), %d checked, %d runtime check(s) executed\n"
            g.Compile_exec.gs_sites g.Compile_exec.gs_elided
            g.Compile_exec.gs_checked g.Compile_exec.gs_checks
        | None -> ())
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:
         "Guarded execution: print the static bounds-prover report for \
          every access site, then run the workload under both executors \
          with the memory sanitizer on (runtime bounds checks on unproved \
          sites, uninitialized-read and NaN/Inf poison checks) and report \
          the guard statistics; exits 1 on any fault")
    Term.(const run $ wl_arg)

(* Bitwise equality over tensor buffers (NaN-safe, -0.0 distinct): the
   soak harness's acceptance bar for degraded results. *)
let bits_equal a b =
  let fa = Tensor.to_float_array a and fb = Tensor.to_float_array b in
  Array.length fa = Array.length fb
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x ->
           if Int64.bits_of_float x <> Int64.bits_of_float fb.(i) then
             ok := false)
         fa;
       !ok
     end

(* ftc lower: run the IR-to-IR lowering pipeline standalone — dump the
   IR between stages, report how many nests blockized, and (--check)
   hold interp(lowered) to bitwise equality against interp(original).
   Honors FT_LOWER_INJECT=1, which appends the deliberately broken pass:
   --check is then expected to fail (the CI must-fail probe). *)
let lower_cmd =
  let run w dump_after dump_all check =
    guarded (fun () ->
        let name, fn, _, _ = workload_case w in
        let names = Lower.pass_names () in
        (match dump_after with
         | Some p when not (List.mem p names) ->
           faultf "lower: unknown pass %S (pipeline: %s)" p
             (String.concat ", " names)
         | _ -> ());
        let dump pname fn' =
          if dump_all || dump_after = Some pname then begin
            Printf.printf "==== after %s ====\n" pname;
            print_string (Printer.func_to_string fn')
          end
        in
        let lowered = Lower.lower ~dump fn in
        let rec count_mk (s : Stmt.t) =
          (match s.Stmt.node with Stmt.Microkernel _ -> 1 | _ -> 0)
          + List.fold_left (fun a c -> a + count_mk c) 0 (Stmt.children s)
        in
        Printf.printf "%s: pipeline [%s]; %d microkernel nest(s)\n" name
          (String.concat " -> " names)
          (count_mk lowered.Stmt.fn_body);
        if check then begin
          let _, fn_a, args_a, _ = workload_case w in
          let _, fn_b, args_b, _ = workload_case w in
          let lowered_b = Lower.lower fn_b in
          Interp.run_func fn_a args_a;
          Interp.run_func lowered_b args_b;
          let outs =
            List.filter_map
              (fun (p : Stmt.param) ->
                match p.Stmt.p_atype with
                | Types.Input -> None
                | _ -> Some p.Stmt.p_name)
              fn_a.Stmt.fn_params
          in
          List.iter
            (fun n ->
              if not (bits_equal (List.assoc n args_a) (List.assoc n args_b))
              then
                faultf
                  "lower %s: interp(lowered) output %s diverges bitwise \
                   from interp(original)"
                  name n)
            outs;
          Printf.printf
            "%s: interp(lowered) bitwise-equal to interp(original) on %d \
             output(s)\n"
            name (List.length outs)
        end)
  in
  let dump_after_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-after" ] ~docv:"PASS"
          ~doc:
            "Print the IR after the named pipeline pass (one of \
             normalize, hoist, blockize).")
  in
  let dump_all_arg =
    Arg.(
      value & flag
      & info [ "dump-all" ] ~doc:"Print the IR after every pass.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the reference interpreter on the original and the \
             lowered program and require bitwise-equal outputs; exits 1 \
             on divergence.")
  in
  Cmd.v
    (Cmd.info "lower"
       ~doc:
         "Run the IR lowering pipeline (normalize, hoist, blockize) \
          standalone: dump the IR between stages, count blockized \
          microkernel nests, and optionally verify the lowered program \
          bitwise against the original under the reference interpreter")
    Term.(const run $ wl_arg $ dump_after_arg $ dump_all_arg $ check_arg)

let soak_cmd =
  let run w seed faults requests min_avail =
    guarded (fun () ->
        let name, fn0, args, _ = workload_case w in
        (* auto-schedule so the parallel backend has annotated loops *)
        let fn = Auto.run ~device:Types.Cpu fn0 in
        let policy = Supervisor.default_policy in
        let sv = Supervisor.prepare ~policy fn in
        let out_names =
          List.filter_map
            (fun (p : Stmt.param) ->
              match p.Stmt.p_atype with
              | Types.Input -> None
              | _ -> Some p.Stmt.p_name)
            fn.Stmt.fn_params
        in
        let outputs () =
          List.filter (fun (n, _) -> List.mem n out_names) args
        in
        let pristine = List.map (fun (n, t) -> (n, Tensor.copy t)) args in
        let restore_all () =
          List.iter
            (fun (n, s) ->
              Tensor.copy_into ~src:s ~dst:(List.assoc n args))
            pristine
        in
        (* Fault-free reference outputs per backend: the bitwise bar a
           degraded result must clear for the backend that served it. *)
        let reference =
          List.map
            (fun b ->
              restore_all ();
              let sv1 =
                Supervisor.prepare ~policy:{ policy with backends = [ b ] }
                  fn
              in
              let o = Supervisor.exec sv1 args in
              (match o.Supervisor.result with
               | Some _ -> ()
               | None ->
                 faultf "soak %s: fault-free run on %s failed:\n%s" name
                   (Supervisor.backend_name b)
                   (Supervisor.outcome_to_string o));
              (b, List.map (fun (n, t) -> (n, Tensor.copy t)) (outputs ())))
            policy.backends
        in
        (* One clean supervised request to size the fault horizon. *)
        restore_all ();
        let warm = Supervisor.exec sv args in
        (match warm.Supervisor.result with
         | Some _ -> ()
         | None -> faultf "soak %s: clean warm-up request failed" name);
        (* Span several attempts' worth of kernels so plans can exercise
           retries and fallbacks, and so some ordinals land beyond what a
           successful run executes (those requests serve clean). *)
        let horizon =
          max 4 (Supervisor.served_kernels warm * (policy.retries + 2))
        in
        let clean = ref 0 and retried = ref 0 and degraded = ref 0 in
        let closed = ref 0 in
        let mismatches = ref 0 and uncaught = ref 0 in
        let attempts_total = ref 0 and fired_total = ref 0 in
        for r = 1 to requests do
          restore_all ();
          let plan =
            Machine.Fault_plan.make ~seed:(seed + (r * 7919)) ~faults
              ~horizon
          in
          match Supervisor.exec sv ~plan args with
          | exception _ -> incr uncaught
          | o ->
            attempts_total := !attempts_total + List.length o.Supervisor.attempts;
            fired_total :=
              !fired_total + List.length (Machine.Fault_plan.fired plan);
            (match o.Supervisor.result with
             | None ->
               incr closed;
               if o.Supervisor.diags = [] then incr uncaught
             | Some b ->
               (* degraded = actually demoted down the chain; a transient
                  absorbed by a retry on the primary counts separately. *)
               if o.Supervisor.degraded then incr degraded
               else if o.Supervisor.retried then incr retried
               else incr clean;
               let want = List.assoc b reference in
               if
                 not
                   (List.for_all
                      (fun (n, t) -> bits_equal t (List.assoc n want))
                      (outputs ()))
               then incr mismatches)
        done;
        let pct n = 100.0 *. float_of_int n /. float_of_int requests in
        let avail = pct (!clean + !retried + !degraded) in
        Printf.printf "soak %s: seed=%d faults=%d requests=%d horizon=%d\n"
          name seed faults requests horizon;
        Printf.printf "  succeeded clean     %4d  (%5.1f%%)\n" !clean
          (pct !clean);
        Printf.printf "  succeeded w/ retry  %4d  (%5.1f%%)\n" !retried
          (pct !retried);
        Printf.printf "  succeeded degraded  %4d  (%5.1f%%)\n" !degraded
          (pct !degraded);
        Printf.printf "  failed closed       %4d  (%5.1f%%)\n" !closed
          (pct !closed);
        Printf.printf
          "  availability        %5.1f%%  (clean + retried + degraded)\n"
          avail;
        Printf.printf
          "  mean attempts %.2f   injected faults fired %d\n"
          (float_of_int !attempts_total /. float_of_int requests)
          !fired_total;
        Printf.printf "  bitwise mismatches %d   uncaught exceptions %d\n"
          !mismatches !uncaught;
        if !uncaught > 0 then
          faultf "soak %s: %d uncaught exception(s)" name !uncaught;
        if !mismatches > 0 then
          faultf
            "soak %s: %d result(s) not bitwise-identical to the serving \
             backend's fault-free run"
            name !mismatches;
        if avail < min_avail *. 100.0 then
          faultf "soak %s: availability %.1f%% below the %.1f%% floor"
            name avail (min_avail *. 100.0))
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed.")
  in
  let faults_arg =
    Arg.(
      value & opt int 3
      & info [ "faults" ] ~docv:"K"
          ~doc:"Injected faults per request (distinct kernel ordinals).")
  in
  let requests_arg =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"R" ~doc:"Requests to serve.")
  in
  let min_avail_arg =
    Arg.(
      value & opt float 0.99
      & info [ "min-availability" ] ~docv:"F"
          ~doc:
            "Fail (exit 1) when (clean + degraded) / requests drops below \
             this fraction.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Serve repeated requests through the execution supervisor under \
          seeded random fault plans (launch failures, transient compute \
          faults, simulated OOM) and print an availability/degradation \
          report; exits 1 on any uncaught exception, bitwise divergence, \
          or availability below the floor")
    Term.(
      const run $ wl_arg $ seed_arg $ faults_arg $ requests_arg
      $ min_avail_arg)

(* ftc serve: drive the workload through the multi-tenant serving layer
   under seeded open-loop load — compiled-artifact cache, request
   batching, supervisor resilience, overload control — and gate on
   availability of admitted requests, structured rejections, steady-state
   cache-hit-rate, zero recompiles after warmup (fault-free runs) and
   bitwise identity against per-backend fresh compiles.  Chaos modes:
   --burst overload phases, --crash-restart with snapshot warm-start,
   --corrupt-snapshot fault injection on the snapshot file. *)
let serve_cmd =
  let run w seed requests rate batch faults guard budget capacity
      min_avail min_hit burst virtual_time deadline_slack queue_high
      queue_low breaker_k breaker_cooldown snapshot_path crash_restart
      corrupt min_warm tenants verify_isolation =
    guarded (fun () ->
        if tenants < 1 then faultf "serve: --tenants must be >= 1";
        if verify_isolation && crash_restart then
          faultf
            "serve: --verify-isolation and --crash-restart do not compose";
        if verify_isolation && not virtual_time then
          faultf
            "serve: --verify-isolation requires --virtual-time (wall-clock \
             timelines are not deterministic)";
        let name, fn0, args, _ = workload_case w in
        (* auto-schedule so the parallel backend has annotated loops *)
        let fn = Auto.run ~device:Types.Cpu fn0 in
        let policy =
          { Supervisor.default_policy with
            Supervisor.guard;
            mem_budget_bytes = (if budget > 0 then Some budget else None) }
        in
        let overload =
          { Serve.ov_queue_high = queue_high;
            ov_queue_low = queue_low;
            ov_breaker_k = breaker_k;
            ov_breaker_cooldown = breaker_cooldown;
            ov_deadline_slack = deadline_slack;
            ov_ewma_warmup = Serve.default_overload.Serve.ov_ewma_warmup }
        in
        let out_names =
          List.filter_map
            (fun (p : Stmt.param) ->
              match p.Stmt.p_atype with
              | Types.Input -> None
              | _ -> Some p.Stmt.p_name)
            fn.Stmt.fn_params
        in
        let outputs_of a =
          List.filter (fun (n, _) -> List.mem n out_names) a
        in
        let pristine = List.map (fun (n, t) -> (n, Tensor.copy t)) args in
        let fresh_args () =
          List.map (fun (n, s) -> (n, Tensor.copy s)) pristine
        in
        (* Tenant fan-out: request [j] carries a dummy size binding
           [__t = j mod tenants].  The variable is absent from the
           program, so every tenant computes the same function, but the
           binding is part of the cache key — each tenant gets its own
           artifact instance, and a batch mixes keys, which is what the
           concurrent dispatcher fans out across domains. *)
        let sizes_of j =
          if tenants <= 1 then [] else [ ("__t", j mod tenants) ]
        in
        (* Per-request argument buffers: requests under different keys
           execute concurrently, so they cannot share tensors.  A
           request's buffers live in this table from materialization
           until its response is consumed. *)
        let req_args : (int, (string * Tensor.t) list) Hashtbl.t =
          Hashtbl.create 64
        in
        let materialize j =
          match Hashtbl.find_opt req_args j with
          | Some a ->
            (* Second call for the same id ([make_request] is called at
               admission and again at dispatch): restore pristine
               contents rather than allocating anew. *)
            List.iter
              (fun (n, s) -> Tensor.copy_into ~src:s ~dst:(List.assoc n a))
              pristine;
            a
          | None ->
            let a = fresh_args () in
            Hashtbl.add req_args j a;
            a
        in
        (* Fresh-compile fault-free reference outputs per backend,
           obtained through the serving path itself (shape
           specialization included, sizes as tenant 0 — every tenant
           runs the same program): the bitwise bar every soak result
           must clear for the backend that served it. *)
        let reference =
          List.map
            (fun b ->
              let srv1 =
                Serve.create
                  ~policy:{ policy with Supervisor.backends = [ b ] } ()
              in
              let a = fresh_args () in
              let r =
                Serve.serve srv1
                  (Serve.request ~sizes:(sizes_of 0) ~id:0 fn a)
              in
              (match r.Serve.rs_status with
               | Serve.Completed { Supervisor.result = Some _; _ } -> ()
               | _ ->
                 faultf "serve %s: fault-free reference run on %s failed"
                   name (Supervisor.backend_name b));
              (b, List.map (fun (n, t) -> (n, Tensor.copy t)) (outputs_of a)))
            policy.Supervisor.backends
        in
        (* Size the fault horizon from one clean supervised run (its
           supervisor is separate: the serving cache stays cold, so the
           soak observes the compulsory first miss). *)
        let horizon =
          if faults = 0 then 0
          else begin
            let sv = Supervisor.prepare ~policy fn in
            let warm = Supervisor.exec sv (fresh_args ()) in
            (match warm.Supervisor.result with
             | Some _ -> ()
             | None -> faultf "serve %s: clean warm-up request failed" name);
            max 4 (Supervisor.served_kernels warm
                   * (policy.Supervisor.retries + 2))
          end
        in
        (* Snapshot records resolve back to the one workload function. *)
        let fn_hash = Canon.canonical_hash fn in
        let resolve h = if h = fn_hash then Some fn else None in
        let phases =
          if burst > 1.0 then [ (0.25, 1.0); (0.5, burst); (0.25, 1.0) ]
          else []
        in
        let make_request j =
          let a = materialize j in
          let plan =
            if faults = 0 then None
            else
              Some
                (Machine.Fault_plan.make ~seed:(seed + (j * 7919)) ~faults
                   ~horizon)
          in
          Serve.request ?plan ~sizes:(sizes_of j) ~id:j fn a
        in
        let mismatches = ref 0 in
        let responses = ref 0 in
        let unstructured = ref 0 in
        (* Per-request isolation signature: everything the per-request
           run context and budget account for — status, serving backend,
           cache hit, guard-check delta, and the attempt log with each
           attempt's kernel and tick counters.  Identical between the
           concurrent soak and a one-domain sequential drain of the same
           seed iff no state leaked across requests. *)
        let signature (r : Serve.response) =
          let status =
            match r.Serve.rs_status with
            | Serve.Rejected d ->
              "rejected:" ^ Diag.code_to_string d.Diag.dg_code
            | Serve.Completed o ->
              Printf.sprintf "completed:%s:%b:%b"
                (match o.Supervisor.result with
                 | None -> "closed"
                 | Some b -> Supervisor.backend_name b)
                o.Supervisor.retried o.Supervisor.degraded
          in
          let attempts =
            match r.Serve.rs_status with
            | Serve.Rejected _ -> ""
            | Serve.Completed o ->
              String.concat ";"
                (List.map
                   (fun (a : Supervisor.attempt) ->
                     Printf.sprintf "%s/r%d/k%d/t%d/%s"
                       (Supervisor.backend_name a.Supervisor.at_backend)
                       a.Supervisor.at_retry a.Supervisor.at_kernels
                       a.Supervisor.at_ticks
                       (match a.Supervisor.at_fault with
                        | None -> "ok"
                        | Some d -> Diag.code_to_string d.Diag.dg_code))
                   o.Supervisor.attempts)
          in
          Printf.sprintf "%s|hit=%b|guards=%d|%s" status r.Serve.rs_hit
            r.Serve.rs_guard_checks attempts
        in
        let handle_response ~count sigs (r : Serve.response) =
          let j = r.Serve.rs_id in
          if count then incr responses;
          (match sigs with
           | Some a when j >= 0 && j < Array.length a -> a.(j) <- signature r
           | _ -> ());
          (match r.Serve.rs_status with
           | Serve.Rejected d ->
             (* Every refusal must carry a structured admission or
                overload diagnostic — sheds are never silent drops. *)
             (match d.Diag.dg_code with
              | Diag.Oom | Diag.Overload -> ()
              | _ -> incr unstructured)
           | Serve.Completed o ->
             (match o.Supervisor.result with
              | None -> ()
              | Some b ->
                let want = List.assoc b reference in
                let a =
                  Option.value ~default:[] (Hashtbl.find_opt req_args j)
                in
                if
                  not
                    (List.for_all
                       (fun (n, t) -> bits_equal t (List.assoc n want))
                       (outputs_of a))
                then incr mismatches));
          Hashtbl.remove req_args j
        in
        let sigs_main = Array.make (max 1 requests) "" in
        let on_response _ r = handle_response ~count:true (Some sigs_main) r in
        (* Request ids (and hence fault-plan seeds) are global across
           phases, so a crash-restart run replays the same chaos a
           single-phase run of the same seed would. *)
        let soak_on ?(on_response = on_response) srv ~first ~count =
          let cfg =
            Serve.soak_cfg ~phases ~virtual_time ~seed:(seed + first)
              ~requests:count ~rate ~batch ()
          in
          Serve.soak ~on_response srv ~cfg
            ~make_request:(fun j -> make_request (first + j))
        in
        Printf.printf
          "serve %s: seed=%d rate=%.0f/s batch<=%d faults=%d workers=%d%s%s%s%s%s%s%s\n"
          name seed rate batch faults
          (Exec_par.num_domains ())
          (if tenants > 1 then Printf.sprintf " tenants=%d" tenants else "")
          (if guard then " guard" else "")
          (if budget > 0 then Printf.sprintf " budget=%dB" budget else "")
          (if burst > 1.0 then Printf.sprintf " burst=%gx" burst else "")
          (if virtual_time then " virtual-time" else "")
          (if crash_restart then " crash-restart" else "")
          (if verify_isolation then " verify-isolation" else "");
        let reports = ref [] in
        (if crash_restart then begin
           let path =
             match snapshot_path with
             | Some p -> p
             | None ->
               let p = Filename.temp_file "ftc-serve" ".snap" in
               (* temp_file creates the file; phase A must start cold *)
               (try Sys.remove p with Sys_error _ -> ());
               p
           in
           let half = max 1 (requests / 2) in
           let rest = requests - half in
           let srv1 = Serve.create ~capacity ~overload ~policy () in
           let r1 = soak_on srv1 ~first:0 ~count:half in
           reports := ("phase A (before crash)", r1) :: !reports;
           let saved = Serve.save_snapshot srv1 ~path in
           Printf.printf "  snapshot: saved %d record(s) to %s\n" saved path;
           (match corrupt with
            | `None -> ()
            | `Truncate ->
              Snapshot.corrupt_truncate ~path ();
              print_endline "  snapshot: injected truncation";
            | `Bitflip ->
              Snapshot.corrupt_bitflip ~path;
              print_endline "  snapshot: injected bit-flip");
           (* The "crash": srv1 and all its in-memory state are gone. *)
           let srv2 = Serve.create ~capacity ~overload ~policy () in
           let wr = Serve.load_snapshot srv2 ~path ~resolve in
           Printf.printf "  restart: %s\n" (Serve.warm_report_to_string wr);
           (match corrupt with
            | `None ->
              (match wr.Serve.ws_corrupt with
               | Some reason ->
                 faultf
                   "serve %s: snapshot reported corrupt with no injected \
                    corruption: %s"
                   name reason
               | None -> ());
              if rest > 0 then begin
                let r2 = soak_on srv2 ~first:half ~count:rest in
                reports := ("phase B (warm restart)", r2) :: !reports;
                if r2.Serve.sk_warm_rate < min_warm then
                  faultf
                    "serve %s: warm-start rate %.1f%% after restart below \
                     the %.1f%% floor"
                    name
                    (100.0 *. r2.Serve.sk_warm_rate)
                    (100.0 *. min_warm)
              end
            | `Truncate | `Bitflip ->
              (match wr.Serve.ws_corrupt with
               | Some _ -> ()
               | None ->
                 faultf
                   "serve %s: injected snapshot corruption went undetected"
                   name);
              if wr.Serve.ws_loaded <> 0 then
                faultf
                  "serve %s: %d entr(ies) loaded from a corrupt snapshot"
                  name wr.Serve.ws_loaded;
              if rest > 0 then begin
                let r2 = soak_on srv2 ~first:half ~count:rest in
                reports := ("phase B (cold rebuild)", r2) :: !reports
              end);
           (* Don't leave throwaway snapshot files behind. *)
           if snapshot_path = None then
             (try Sys.remove path with Sys_error _ -> ())
         end
         else begin
           let srv = Serve.create ~capacity ~overload ~policy () in
           (match snapshot_path with
            | Some p ->
              let wr = Serve.load_snapshot srv ~path:p ~resolve in
              Printf.printf "  %s\n" (Serve.warm_report_to_string wr)
            | None -> ());
           let r = soak_on srv ~first:0 ~count:requests in
           reports := ("soak", r) :: !reports;
           (match snapshot_path with
            | Some p ->
              let saved = Serve.save_snapshot srv ~path:p in
              Printf.printf "  snapshot: saved %d record(s) to %s\n" saved p
            | None -> ());
           (* Containment verification: drain the identical load
              through a fresh server that dispatches groups one at a
              time (same pool size and chunking — dispatch concurrency
              is the only variable) and require every per-request
              signature, and the aggregate counters, to match the
              concurrent run.  Any cross-request state leak (a shared
              run context's fault plan, deadline clock or cost
              counters, a shared budget, a clobbered guard delta)
              drifts a signature.  Under FT_ISOLATION_INJECT=1 the run
              context is deliberately process-global, and this gate
              must fail. *)
           if verify_isolation then begin
             let sigs_seq = Array.make (max 1 requests) "" in
             let r_seq =
               let srv2 =
                 Serve.create ~capacity ~overload ~sequential_dispatch:true
                   ~policy ()
               in
               soak_on srv2
                 ~on_response:(fun _ r ->
                   handle_response ~count:false (Some sigs_seq) r)
                 ~first:0 ~count:requests
             in
             let violations = ref [] in
             for j = requests - 1 downto 0 do
               if sigs_seq.(j) <> sigs_main.(j) then
                 violations := j :: !violations
             done;
             Printf.printf
               "  isolation: %d/%d per-request signatures match the \
                sequential drain\n"
               (requests - List.length !violations)
               requests;
             (match !violations with
              | [] -> ()
              | j :: _ ->
                faultf
                  "serve %s: %d request(s) diverge from the sequential \
                   drain (isolation violation); first at request %d:\n\
                  \  concurrent: %s\n\
                  \  sequential: %s"
                  name
                  (List.length !violations)
                  j sigs_main.(j) sigs_seq.(j));
             let agg (x : Serve.soak_report) =
               ( x.Serve.sk_served_clean, x.Serve.sk_retried,
                 x.Serve.sk_degraded, x.Serve.sk_failed,
                 x.Serve.sk_rejected, x.Serve.sk_shed_admission,
                 x.Serve.sk_shed_deadline, x.Serve.sk_compiles,
                 x.Serve.sk_guard_checks, x.Serve.sk_makespan_s )
             in
             if agg r_seq <> agg r then
               faultf
                 "serve %s: aggregate soak counters diverge from the \
                  sequential drain (isolation violation)"
                 name
           end
         end);
        let reports = List.rev !reports in
        List.iter
          (fun (lbl, r) ->
            Printf.printf "-- %s --\n%s\n" lbl
              (Serve.soak_report_to_string r))
          reports;
        Printf.printf "  bitwise mismatches vs fresh compile: %d\n"
          !mismatches;
        let sum f = List.fold_left (fun a (_, r) -> a + f r) 0 reports in
        let served =
          sum (fun r ->
              r.Serve.sk_served_clean + r.Serve.sk_retried
              + r.Serve.sk_degraded)
        in
        let shed =
          sum (fun r -> r.Serve.sk_shed_admission + r.Serve.sk_shed_deadline)
        in
        let admitted = requests - shed in
        if !responses <> requests then
          faultf "serve %s: %d request(s) vanished without a response"
            name (requests - !responses);
        if !unstructured > 0 then
          faultf
            "serve %s: %d rejection(s) without an admission/overload \
             diagnostic"
            name !unstructured;
        if !mismatches > 0 then
          faultf
            "serve %s: %d result(s) not bitwise-identical to the serving \
             backend's fresh compile"
            name !mismatches;
        if virtual_time && sum (fun r -> r.Serve.sk_deadline_miss) > 0 then
          faultf
            "serve %s: deadline miss(es) under virtual time — shedding \
             should have refused those requests"
            name;
        let avail =
          float_of_int served /. float_of_int (max 1 admitted)
        in
        if avail < min_avail then
          faultf
            "serve %s: availability %.1f%% of %d admitted request(s) \
             below the %.1f%% floor"
            name (100.0 *. avail) admitted (100.0 *. min_avail);
        List.iter
          (fun (lbl, r) ->
            if r.Serve.sk_hit_rate < min_hit then
              faultf
                "serve %s: steady-state cache-hit-rate %.1f%% (%s) below \
                 the %.1f%% floor"
                name
                (100.0 *. r.Serve.sk_hit_rate)
                lbl (100.0 *. min_hit))
          reports;
        if
          faults = 0
          && sum (fun r -> r.Serve.sk_recompiles_after_warmup) > 0
        then
          faultf
            "serve %s: %d recompile(s) after warmup in a fault-free soak"
            name
            (sum (fun r -> r.Serve.sk_recompiles_after_warmup)))
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Arrival-process and fault-plan seed.")
  in
  let requests_arg =
    Arg.(
      value & opt int 500
      & info [ "requests" ] ~docv:"R" ~doc:"Requests to serve.")
  in
  let rate_arg =
    Arg.(
      value & opt float 500.0
      & info [ "rate" ] ~docv:"F"
          ~doc:"Mean open-loop arrival rate, requests/second.")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"B"
          ~doc:"Max queued requests drained per batch.")
  in
  let faults_arg =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"K"
          ~doc:"Injected faults per request (0 = fault-free).")
  in
  let guard_arg =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:
            "Serve with guarded execution; the report counts per-request \
             runtime bounds checks via guard-counter snapshots.")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"BYTES"
          ~doc:
            "Memory budget shared by each batch (0 = none); admission \
             control rejects requests whose arguments alone exceed it.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 16
      & info [ "cache-capacity" ] ~docv:"C"
          ~doc:"Artifact-cache LRU capacity.")
  in
  let min_avail_arg =
    Arg.(
      value & opt float 1.0
      & info [ "min-availability" ] ~docv:"F"
          ~doc:
            "Fail (exit 1) when served / requests drops below this \
             fraction.")
  in
  let min_hit_arg =
    Arg.(
      value & opt float 0.9
      & info [ "min-hit-rate" ] ~docv:"F"
          ~doc:
            "Fail (exit 1) when the steady-state cache-hit-rate drops \
             below this fraction.")
  in
  let burst_arg =
    Arg.(
      value & opt float 1.0
      & info [ "burst" ] ~docv:"M"
          ~doc:
            "Overload burst: the middle half of the soak arrives at M x \
             the base rate (phases 25%/50%/25%).  1.0 = steady load.")
  in
  let virtual_arg =
    Arg.(
      value & flag
      & info [ "virtual-time" ]
          ~doc:
            "Advance the soak timeline by the cost model's service \
             estimate per request instead of measured wall-clock: fully \
             deterministic, and enables modeled default deadlines.")
  in
  let slack_arg =
    Arg.(
      value & opt float 8.0
      & info [ "deadline-slack" ] ~docv:"S"
          ~doc:
            "Default relative deadline = S x the modeled service time \
             (takes effect under $(b,--virtual-time), where the \
             timeline shares the model's units).")
  in
  let queue_high_arg =
    Arg.(
      value & opt int 0
      & info [ "queue-high" ] ~docv:"N"
          ~doc:
            "Queue depth that triggers admission shedding (0 = \
             unbounded queue).")
  in
  let queue_low_arg =
    Arg.(
      value & opt int 0
      & info [ "queue-low" ] ~docv:"N"
          ~doc:
            "Queue depth at which admission shedding stops again \
             (hysteresis; must be below $(b,--queue-high)).")
  in
  let breaker_k_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-k" ] ~docv:"K"
          ~doc:
            "Consecutive primary failures on a cache key that trip its \
             circuit breaker (0 disables breakers).")
  in
  let breaker_cooldown_arg =
    Arg.(
      value & opt int 8
      & info [ "breaker-cooldown" ] ~docv:"N"
          ~doc:
            "Fallback-served requests on a tripped key before the \
             half-open probe.")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:
            "Cache-metadata snapshot file: loaded (warm start) before \
             the soak if present, saved after it.  With \
             $(b,--crash-restart) this is the file the restart reloads.")
  in
  let crash_arg =
    Arg.(
      value & flag
      & info [ "crash-restart" ]
          ~doc:
            "Chaos mode: serve the first half of the load, snapshot the \
             cache, discard the server (simulated crash), warm-start a \
             fresh one from the snapshot and serve the rest.  Gates on \
             the warm-start rate ($(b,--min-warm-hit)).")
  in
  let corrupt_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("none", `None); ("truncate", `Truncate);
               ("bitflip", `Bitflip) ])
          `None
      & info [ "corrupt-snapshot" ] ~docv:"MODE"
          ~doc:
            "With $(b,--crash-restart): damage the snapshot between \
             crash and restart (truncate = torn write, bitflip = silent \
             media corruption).  The gate then requires detection plus \
             a clean cold rebuild.")
  in
  let min_warm_arg =
    Arg.(
      value & opt float 0.8
      & info [ "min-warm-hit" ] ~docv:"F"
          ~doc:
            "Fail (exit 1) when the warm-start rate after a \
             crash-restart drops below this fraction.")
  in
  let tenants_arg =
    Arg.(
      value & opt int 1
      & info [ "tenants" ] ~docv:"T"
          ~doc:
            "Fan the workload out as T tenants: request j carries a \
             dummy size binding (__t = j mod T), so each tenant gets \
             its own cache key and artifact instance while computing \
             the same function — a batch then mixes keys, and the \
             concurrent dispatcher fans the groups out across the \
             domain pool.")
  in
  let verify_isolation_arg =
    Arg.(
      value & flag
      & info [ "verify-isolation" ]
          ~doc:
            "After the soak, drain the identical load through a fresh \
             server that dispatches groups one at a time (same pool \
             size — dispatch concurrency is the only variable) and \
             require every per-request signature — status, backend, \
             cache hit, guard checks, and the attempt log's kernel/tick \
             counters — plus the aggregate soak counters to match the \
             concurrent run; exits 1 on any divergence.  Requires \
             $(b,--virtual-time).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the workload through the multi-tenant serving layer \
          under seeded open-loop load: compiled-artifact cache with \
          shape specialization and LRU bounds, EDF request scheduling \
          with deadline-aware load shedding, bounded-queue admission, \
          per-key circuit breakers, crash-safe cache snapshots, request \
          batching over the execution supervisor, admission control \
          against the memory budget, concurrent batch dispatch across \
          the domain pool with per-request fault isolation \
          ($(b,--tenants), $(b,--verify-isolation)).  Reports \
          throughput, p50/p99 latency, shed/deadline-miss counts, \
          cache-hit and warm-start rates, breaker activity and the \
          batch-size histogram; exits 1 on bitwise divergence from \
          fresh compiles, unstructured rejections, missing responses, \
          availability or hit-rate below their floors, undetected \
          snapshot corruption, isolation violations, or any recompile \
          after warmup in a fault-free soak")
    Term.(
      const run $ wl_arg $ seed_arg $ requests_arg $ rate_arg $ batch_arg
      $ faults_arg $ guard_arg $ budget_arg $ capacity_arg $ min_avail_arg
      $ min_hit_arg $ burst_arg $ virtual_arg $ slack_arg $ queue_high_arg
      $ queue_low_arg $ breaker_k_arg $ breaker_cooldown_arg $ snapshot_arg
      $ crash_arg $ corrupt_arg $ min_warm_arg $ tenants_arg
      $ verify_isolation_arg)

(* ftc litmus: the exhaustive transformation-correctness harness.
   Enumerates every skeleton program within --depth/--stmts, every
   applicable schedule sequence up to --sched-len, dedups both by
   canonical hash, and differentially verifies every surviving pair
   (interp vs compiled, sequential and parallel) while cross-checking
   the static race/bounds verdicts against the sanitizers.  TransForm-
   style streaming: one "New hash (unique/total)" line per novel
   program, "Results,..." summary lines at the end. *)
let litmus_cmd =
  let run depth stmts sched_len budget inject corpus_dir progress_every
      max_failures quiet =
    guarded (fun () ->
        let mutation = if inject then `Off_by_one else `None in
        (match corpus_dir with
         | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
         | _ -> ());
        let cfg =
          { Ft_litmus.Harness.depth; stmts; sched_len; budget; max_failures;
            mutation; corpus_dir;
            progress =
              (if quiet then ignore
               else fun line ->
                 print_endline line;
                 flush stdout);
            progress_every }
        in
        let stats = Ft_litmus.Harness.run cfg in
        List.iter print_endline (Ft_litmus.Harness.report stats);
        let n_fail = List.length stats.Ft_litmus.Harness.failures in
        if n_fail > 0 then
          faultf "litmus: %d failing pair(s)%s" n_fail
            (if inject then " (miscompile injection is on)" else ""))
  in
  let depth_arg =
    Arg.(
      value & opt int 1
      & info [ "depth" ] ~docv:"D" ~doc:"Max loop-nesting depth.")
  in
  let stmts_arg =
    Arg.(
      value & opt int 2
      & info [ "stmts" ] ~docv:"S" ~doc:"Max statement-node count.")
  in
  let sched_len_arg =
    Arg.(
      value & opt int 1
      & info [ "sched-len" ] ~docv:"K" ~doc:"Max schedule-sequence length.")
  in
  let budget_arg =
    Arg.(
      value & opt int 0
      & info [ "budget" ] ~docv:"N"
          ~doc:"Stop after checking N pairs (0 = run to exhaustion).")
  in
  let inject_arg =
    Arg.(
      value & flag
      & info [ "inject-miscompile" ]
          ~doc:
            "Compile through a deliberately wrong executor (off-by-one \
             store index) to validate that the harness catches and \
             shrinks miscompiles; the run is expected to fail.")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Write shrunk failing cases as DIR/shrunk-*.litmus.")
  in
  let progress_every_arg =
    Arg.(
      value & opt int 500
      & info [ "progress-every" ] ~docv:"N"
          ~doc:"Status line every N checked pairs (0 = off).")
  in
  let max_failures_arg =
    Arg.(
      value & opt int 10
      & info [ "max-failures" ] ~docv:"N"
          ~doc:"Stop after N failures (0 = keep going).")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress per-hash progress lines.")
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Exhaustively enumerate small programs and schedule sequences \
          to a bound, dedup by canonical hash, and differentially verify \
          every pair across executors while cross-checking static \
          race/bounds verdicts against the sanitizers; exits 1 on any \
          mismatch or soundness violation")
    Term.(
      const run $ depth_arg $ stmts_arg $ sched_len_arg $ budget_arg
      $ inject_arg $ corpus_arg $ progress_every_arg $ max_failures_arg
      $ quiet_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let group =
    Cmd.group ~default
      (Cmd.info "ftc" ~version:"1.0.0"
         ~doc:"FreeTensor: free-form tensor program compiler")
      [ show_cmd; schedule_cmd; codegen_cmd; grad_cmd; estimate_cmd;
        run_cmd; profile_cmd; check_cmd; guard_cmd; lower_cmd; soak_cmd;
        serve_cmd; litmus_cmd ]
  in
  (* 0 = ok, 1 = fault (guarded already exited for handled faults; an
     escaped exception lands here), 2 = usage. *)
  exit
    (match Cmd.eval_value group with
     | Ok (`Ok () | `Version | `Help) -> 0
     | Error (`Parse | `Term) -> 2
     | Error `Exn -> 1)
